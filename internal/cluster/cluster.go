// Package cluster implements the paper's system model (Figure 1): jobs
// arrive at a central scheduler that dispatches them, without
// rescheduling, to one of n computers with different speeds; each computer
// runs its jobs under preemptive processor scheduling to completion.
//
// The package provides the workload generator (§4.1 defaults: Bounded
// Pareto job sizes with mean 76.8 s, two-stage hyperexponential arrivals
// with CV 3), warm-up truncation (first quarter of the run), the three
// paper metrics (mean response time, mean response ratio, fairness = the
// standard deviation of the response ratio), per-computer accounting used
// by Table 1 and Figure 2, and a replication runner that executes
// independent seeded runs in parallel and aggregates them with confidence
// intervals.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"heterosched/internal/ctrlplane"
	"heterosched/internal/dist"
	"heterosched/internal/drift"
	"heterosched/internal/faults"
	"heterosched/internal/netfault"
	"heterosched/internal/probe"
	"heterosched/internal/rng"
	"heterosched/internal/sim"
	"heterosched/internal/stats"
)

// Discipline selects the processor-scheduling model for every computer.
type Discipline int

const (
	// PS is exact processor sharing (the analysis model; default).
	PS Discipline = iota
	// RR is quantum-based preemptive round-robin (§4.1's literal
	// discipline); set Config.Quantum.
	RR
	// FCFS serves jobs to completion in arrival order (contrast model).
	FCFS
)

// String returns the discipline mnemonic.
func (d Discipline) String() string {
	switch d {
	case PS:
		return "PS"
	case RR:
		return "RR"
	case FCFS:
		return "FCFS"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// Config describes one simulation run.
type Config struct {
	// Speeds are the computers' relative speeds (all > 0).
	Speeds []float64
	// Utilization is the offered load ρ = λ/(μ Σ s_i). The paper's model
	// assumes ρ < 1; values ≥ 1 (overload) are permitted so the
	// protection mechanisms in Overload can be studied, but without them
	// queues grow without bound.
	Utilization float64
	// JobSize is the service-demand distribution; nil means the paper
	// default Bounded Pareto B(10, 21600, 1.0), mean 76.8 s.
	JobSize dist.Distribution
	// ArrivalCV is the coefficient of variation of inter-arrival times.
	// Values > 1 use a balanced-means two-stage hyperexponential; exactly
	// 1 (or 0, meaning "default") uses the paper default CV of 3.0. Set
	// ExponentialArrivals for a Poisson process.
	ArrivalCV float64
	// ExponentialArrivals forces a Poisson arrival process (CV = 1).
	ExponentialArrivals bool
	// Duration is the total simulated time in seconds (default 4.0e6, the
	// paper's run length).
	Duration float64
	// WarmupFraction is the fraction of Duration treated as start-up and
	// excluded from job statistics. Zero means the paper default 0.25
	// (the first quarter of the run); pass a negative value for no
	// warm-up at all. Jobs are counted if they *arrive* after the
	// warm-up.
	WarmupFraction float64
	// Seed drives all randomness in the run.
	Seed uint64
	// Discipline selects the server model (default PS).
	Discipline Discipline
	// Quantum is the RR slice length in seconds (required for RR).
	Quantum float64
	// DeviationInterval, when positive, records the workload allocation
	// deviation (Figure 2) over consecutive intervals of this many
	// seconds, starting at time 0.
	DeviationInterval float64
	// Drain, when true, keeps the simulation running after Duration until
	// all admitted jobs complete, so no job's response time is lost. When
	// false, jobs still in service at Duration are discarded (the paper's
	// approach is immaterial at its run lengths; Drain defaults to true).
	Drain *bool
	// OnDeparture, when non-nil, is invoked for every post-warm-up job at
	// its completion time (e.g. to write a job trace). The callback must
	// not retain the job past the call. It fires only for completed jobs;
	// use OnFinal to observe every terminal outcome.
	OnDeparture func(*sim.Job)
	// OnFinal, when non-nil, is invoked exactly once for every
	// post-warm-up job at its terminal event, whatever the outcome:
	// completion (possibly late), deadline kill, queue shed, retry-budget
	// drop, admission rejection, or loss to a failure. The callback must
	// not retain the job past the call. With Drain false, jobs still in
	// flight at the horizon never reach a terminal event and are not
	// reported.
	OnFinal func(*sim.Job, Outcome)
	// Probe, when non-nil and enabled, attaches the observability layer
	// (see internal/probe): lifecycle events, time-weighted metric series
	// and cadence samples. A probe belongs to exactly one run — do not
	// share one across replications. With Probe nil or disabled the run
	// is bit-identical to a build without the probe subsystem: no extra
	// random stream is derived and no extra events are scheduled.
	Probe *probe.Probe
	// Replay, when non-empty, drives arrivals from this trace (sorted by
	// ascending Arrival) instead of the synthetic generators: JobSize,
	// ArrivalCV and ExponentialArrivals are ignored, and Duration
	// defaults to the last trace arrival. Utilization is still passed to
	// the policy (static allocators need the offered load); set it to the
	// trace's measured utilization.
	Replay []ReplayJob
	// Arrivals, when non-nil, overrides the default renewal arrival
	// process (H2 with ArrivalCV) with a custom one, e.g.
	// SinusoidalPoisson for nonstationarity studies. Job sizes still come
	// from JobSize; Utilization is what the policy is told, and should be
	// set to Arrivals.MeanRate()·E[size]/Σspeeds for consistency.
	// Ignored when Replay is set.
	Arrivals ArrivalProcess
	// Faults, when non-nil and enabled, injects per-computer
	// failure/repair processes (see internal/faults). With Faults nil or
	// disabled the run is bit-identical to a build without the fault
	// subsystem: no extra random stream is derived and no extra events
	// are scheduled.
	Faults *faults.Config
	// Overload, when non-nil and enabled, activates the overload-
	// protection layer: admission control, bounded per-computer queues,
	// job deadlines, dispatcher timeout/retry with backoff, and
	// per-computer circuit breakers (see OverloadConfig). With Overload
	// nil or all-defaults the run is bit-identical to a build without the
	// overload subsystem.
	Overload *OverloadConfig
	// SampleInterval, when positive, records the number of jobs in the
	// system (admitted minus completed or dropped) every SampleInterval
	// seconds into Result.InSystemSeries — the direct way to watch queues
	// grow without bound at ρ ≥ 1. Zero disables sampling and schedules
	// no extra events.
	SampleInterval float64
	// Drift, when non-nil and enabled, perturbs the ground truth during
	// the run: arrival-rate schedules, speed steps, and one-shot
	// misestimation of the inputs the policy plans from (see
	// internal/drift). With Drift nil or disabled the run is
	// bit-identical to a build without the drift subsystem: no extra
	// random stream is derived and no extra events are scheduled.
	Drift *drift.Config
	// Adapt, when non-nil and enabled, runs the stability watchdog and
	// hysteretic re-planning loop (see AdaptConfig); the policy must be
	// Replannable. With Adapt nil or disabled the run is bit-identical
	// to a build without the adaptive subsystem.
	Adapt *AdaptConfig
	// Netfault, when non-nil and enabled, inserts the network/control-
	// plane fault layer between the dispatcher and the computers:
	// per-link dispatch latency, loss and duplication, dispatcher
	// crash/restart, partitions, and the ack/resubmission reliability
	// loop (see internal/netfault). With Netfault nil or disabled the
	// run is bit-identical to a build without the subsystem: no extra
	// random stream is derived and no extra events are scheduled.
	Netfault *netfault.Config
	// Ctrl, when non-nil and enabled, makes the control plane physical:
	// JIQ idle-token reports, jsq/pod(d) queue-length queries and
	// inter-dispatcher counter-sync frames travel over faulty links
	// (latency, loss, duplication, partitions), so state-querying
	// policies act on stale, lossy views and pay query round-trips in
	// dispatch latency (see internal/ctrlplane). With Ctrl nil or
	// disabled the run is bit-identical to a build without the
	// subsystem: no extra random stream is derived, no extra events are
	// scheduled, and the policies read the oracle StateView.
	Ctrl *ctrlplane.Config
}

// ReplayJob is one recorded arrival for trace-driven simulation.
type ReplayJob struct {
	// Arrival is the absolute arrival time in seconds.
	Arrival float64
	// Size is the job's service demand at speed 1.
	Size float64
}

// withDefaults returns a copy of c with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.JobSize == nil {
		c.JobSize = dist.PaperJobSize()
	}
	if c.ArrivalCV == 0 {
		c.ArrivalCV = 3.0
	}
	if c.Duration == 0 {
		if len(c.Replay) > 0 {
			c.Duration = c.Replay[len(c.Replay)-1].Arrival
		} else {
			c.Duration = 4.0e6
		}
	}
	switch {
	case c.WarmupFraction == 0:
		c.WarmupFraction = 0.25
	case c.WarmupFraction < 0:
		c.WarmupFraction = 0
	}
	if c.Drain == nil {
		d := true
		c.Drain = &d
	}
	return c
}

// validate reports configuration errors.
func (c Config) validate() error {
	if len(c.Speeds) == 0 {
		return errors.New("cluster: no computers")
	}
	for i, s := range c.Speeds {
		if !(s > 0) || math.IsInf(s, 0) {
			return fmt.Errorf("cluster: speed[%d] = %v invalid", i, s)
		}
	}
	if c.Utilization < 0 || math.IsNaN(c.Utilization) || math.IsInf(c.Utilization, 0) {
		return fmt.Errorf("cluster: utilization %v invalid (must be finite and non-negative)", c.Utilization)
	}
	if c.ArrivalCV < 1 {
		return fmt.Errorf("cluster: arrival CV %v < 1 not representable by H2", c.ArrivalCV)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("cluster: duration %v invalid", c.Duration)
	}
	if c.WarmupFraction < 0 || c.WarmupFraction >= 1 {
		return fmt.Errorf("cluster: warmup fraction %v outside [0,1)", c.WarmupFraction)
	}
	if c.Discipline == RR && !(c.Quantum > 0) {
		return fmt.Errorf("cluster: RR discipline requires positive quantum, got %v", c.Quantum)
	}
	for i, r := range c.Replay {
		if !(r.Size > 0) {
			return fmt.Errorf("cluster: replay job %d has non-positive size %v", i, r.Size)
		}
		if r.Arrival < 0 || (i > 0 && r.Arrival < c.Replay[i-1].Arrival) {
			return fmt.Errorf("cluster: replay arrivals not sorted ascending at index %d", i)
		}
	}
	if err := c.Faults.Validate(len(c.Speeds)); err != nil {
		return err
	}
	if err := c.Overload.Validate(); err != nil {
		return err
	}
	if c.SampleInterval < 0 || math.IsNaN(c.SampleInterval) || math.IsInf(c.SampleInterval, 0) {
		return fmt.Errorf("cluster: sample interval %v invalid", c.SampleInterval)
	}
	if err := c.Drift.Validate(len(c.Speeds)); err != nil {
		return err
	}
	if c.Drift.Enabled() {
		if c.Drift.Arrival != nil && len(c.Replay) > 0 {
			return errors.New("cluster: arrival-rate drift cannot modulate a replayed trace")
		}
		if len(c.Drift.SpeedSteps) > 0 && c.Discipline != PS {
			return fmt.Errorf("cluster: speed drift requires the PS discipline, got %v", c.Discipline)
		}
	}
	if err := c.Adapt.Validate(); err != nil {
		return err
	}
	if err := c.Netfault.Validate(len(c.Speeds)); err != nil {
		return err
	}
	// The replica count is policy state the config cannot see; replica-
	// indexed sync partitions are range-checked by the CLI, which knows
	// -dispatchers.
	if err := c.Ctrl.Validate(len(c.Speeds), 0); err != nil {
		return err
	}
	return nil
}

// Lambda returns the system arrival rate implied by the configuration.
func (c Config) Lambda() float64 {
	cc := c.withDefaults()
	total := 0.0
	for _, s := range cc.Speeds {
		total += s
	}
	return cc.Utilization * total / cc.JobSize.Mean()
}

// Mu returns the base-line service rate 1/E[job size].
func (c Config) Mu() float64 {
	cc := c.withDefaults()
	return 1 / cc.JobSize.Mean()
}

// Context is the simulation context handed to a Policy at initialization.
type Context struct {
	// Engine is the run's event engine; policies may schedule events
	// (e.g. delayed load updates).
	Engine *sim.Engine
	// Speeds are the computers' relative speeds.
	Speeds []float64
	// Utilization is the true offered load ρ.
	Utilization float64
	// Lambda and Mu are the arrival and base-line service rates.
	Lambda, Mu float64
	// RNG is a dedicated random stream for the policy's own decisions.
	RNG *rng.Stream
	// Horizon is the run duration in simulated seconds; policies that
	// schedule recurring events (e.g. periodic dispatcher counter sync)
	// must stop at the horizon or a draining run would never finish.
	Horizon float64
}

// Policy is a job scheduling policy: it selects a target computer for each
// arriving job and observes departures.
type Policy interface {
	// Name identifies the policy in reports ("ORR", "WRAN", "LL", ...).
	Name() string
	// Init is called once per run before any job arrives.
	Init(ctx *Context) error
	// Select returns the index of the computer to run the job on. It is
	// called at the job's arrival time.
	Select(job *sim.Job) int
	// Departed notifies the policy that a job completed on its target
	// computer, at the engine's current time. Policies model their own
	// detection/update delays by scheduling events.
	Departed(job *sim.Job)
}

// FaultAware is implemented by policies that react to computer failures
// and repairs. The run calls UpSetChanged — after the configured
// detection lag — with the availability mask current at detection time;
// policies typically stop dispatching to down computers and may
// recompute their allocation over the survivors (sched.ReallocResolve).
type FaultAware interface {
	UpSetChanged(up []bool)
}

// StateView is the computer state a state-aware policy may observe at
// decision time — the query channel of the scalable-dispatch family
// (JSQ(d), biased power-of-d, JIQ). Queries read the live servers, so a
// policy that never queries costs nothing: the stateless policies keep
// their zero-query path untouched.
type StateView interface {
	// QueueLen returns the number of jobs at computer i (queued plus in
	// service) as the policy can best observe it. With the control
	// plane enabled this is a probe over a faulty link: the value may
	// be a stale cached observation or a pessimistic placeholder.
	QueueLen(i int) int
	// Age returns the age in seconds of the observation the last
	// QueueLen(i) was served from: 0 for a live read (the oracle view,
	// or an in-time probe), positive for a cached fallback, +Inf for a
	// computer never observed. A StateView is a snapshot with an age,
	// not an oracle.
	Age(i int) float64
	// N returns the number of computers.
	N() int
}

// StateAware is implemented by policies that query computer state at
// decision time. The run binds the view once the simulated computers
// exist — after Init, before the first arrival.
type StateAware interface {
	BindState(view StateView)
}

// CtrlAware is implemented by policies that can route their control
// traffic (idle tokens, state queries, counter-sync frames) through the
// physical control plane. The run calls BindCtrl — after Init, before
// BindState — only when Config.Ctrl is enabled; a policy that never
// receives it keeps the oracle state path.
type CtrlAware interface {
	BindCtrl(p *ctrlplane.Plane)
}

// DecisionCost is implemented by policies whose Select may wait on
// control-plane round-trips. TakeDecisionCost returns the wait in
// seconds accumulated by the most recent Select and resets it; the run
// delays the job's departure from the dispatcher by that much.
type DecisionCost interface {
	TakeDecisionCost() float64
}

// ctrlEventKind maps a control-plane message event to its probe kind.
func ctrlEventKind(kind ctrlplane.MsgEvent) probe.EventKind {
	switch kind {
	case ctrlplane.MsgTokenReport:
		return probe.EvTokenReport
	case ctrlplane.MsgTokenSpend:
		return probe.EvTokenSpend
	case ctrlplane.MsgTokenExpire:
		return probe.EvTokenExpire
	case ctrlplane.MsgQueryTimeout:
		return probe.EvQueryTimeout
	default:
		return probe.EvSyncFrame
	}
}

// ShardedPolicy is implemented by policies that route arrivals through
// K dispatcher replicas; the probe uses it to attribute each dispatch
// decision to the replica that made it (per-dispatcher series).
type ShardedPolicy interface {
	// Shards returns the number of dispatcher replicas K.
	Shards() int
	// LastShard returns the replica index of the most recent Select.
	LastShard() int
}

// serverStateView adapts the run's servers to the StateView queries.
type serverStateView []sim.Server

func (v serverStateView) QueueLen(i int) int { return v[i].InService() }
func (v serverStateView) Age(int) float64    { return 0 }
func (v serverStateView) N() int             { return len(v) }

// Result aggregates one run's statistics over the post-warm-up jobs.
type Result struct {
	// Policy is the policy name.
	Policy string
	// MeanResponseTime is the average of Completion − Arrival (seconds).
	MeanResponseTime float64
	// MeanResponseRatio is the average of response time / job size.
	MeanResponseRatio float64
	// Fairness is the standard deviation of the response ratio (§4.1);
	// smaller is better.
	Fairness float64
	// Jobs is the number of jobs included in the statistics.
	Jobs int64
	// JobFractions[i] is the fraction of counted jobs sent to computer i.
	JobFractions []float64
	// Utilizations[i] is busy time / observed time for computer i over
	// the whole run (including warm-up).
	Utilizations []float64
	// RatioP50, RatioP95 and RatioP99 are percentile estimates of the
	// response ratio distribution, from a log-binned histogram (an
	// extension beyond the paper's mean-based metrics).
	RatioP50, RatioP95, RatioP99 float64
	// Deviations holds the per-interval workload allocation deviations
	// when Config.DeviationInterval was set (Figure 2), measured against
	// the policy's own realized overall fractions unless the policy
	// provides target fractions.
	Deviations []float64
	// GeneratedJobs counts all arrivals, including warm-up.
	GeneratedJobs int64
	// Outcomes[o] counts every finalized job by terminal Outcome,
	// warm-up included (unlike the response-time statistics, which drop
	// the warm-up prefix). Length NumOutcomes. On a drained run every
	// arrival reaches exactly one outcome, so sum(Outcomes) ==
	// GeneratedJobs and FinalInSystem == 0 — the job-conservation
	// ledger the chaos harness (internal/chaos) asserts. Without Drain
	// the residual jobs at the horizon are unfinalized (FinalInSystem,
	// plus any arrivals parked in a crashed dispatcher's buffer).
	Outcomes []int64
	// FinalInSystem is the number of dispatched jobs still in the
	// system when the run ended (always 0 with Drain on).
	FinalInSystem int64
	// SimulatedTime is the time at which statistics collection ended.
	SimulatedTime float64
	// Overload holds the overload-protection counters and the admitted-job
	// response-time percentiles; nil unless Config.Overload was enabled.
	Overload *OverloadStats
	// InSystemSeries[k] is the number of jobs in the system at time
	// (k+1)·SampleInterval; nil unless Config.SampleInterval was set.
	InSystemSeries []int64
	// Adaptive holds the watchdog/re-planning counters and final
	// estimates; nil unless Config.Adapt was enabled.
	Adaptive *AdaptiveStats
	// Netfault holds the network/control-plane fault counters; nil
	// unless Config.Netfault was enabled.
	Netfault *NetfaultStats
	// Ctrl holds the control-plane message ledger (token, query and
	// sync counters); nil unless Config.Ctrl was enabled.
	Ctrl *ctrlplane.Stats

	// The remaining fields are populated only when Config.Faults enabled
	// failure injection (Availability is nil otherwise).

	// Availability[i] is the observed time-weighted fraction of the run
	// computer i was up.
	Availability []float64
	// Failures and Repairs count fault events across all computers.
	Failures, Repairs int64
	// JobsLost counts jobs discarded (fate Lost, or requeue budget
	// exhausted); JobsRequeued counts successful re-dispatches;
	// JobsRestarted and JobsResumed count jobs held at a failed computer
	// under the respective fates.
	JobsLost, JobsRequeued, JobsRestarted, JobsResumed int64
	// DegradedTime is the total time at least one computer was down.
	DegradedTime float64
	// DegradedJobs counts post-warm-up jobs that arrived while the
	// system was degraded; MeanResponseTimeDegraded and
	// MeanResponseRatioDegraded average over exactly those jobs.
	DegradedJobs                                        int64
	MeanResponseTimeDegraded, MeanResponseRatioDegraded float64
}

// FractionProvider is implemented by policies that know their target
// allocation fractions (static policies); the deviation tracker uses them
// as the expected vector. Policies without it (e.g. dynamic least-load)
// cannot be deviation-tracked.
type FractionProvider interface {
	Fractions() []float64
}

// Run executes one simulation run of cfg under the given policy.
func Run(cfg Config, policy Policy) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	n := len(cfg.Speeds)
	root := rng.New(cfg.Seed)
	arrStream := root.Derive("arrivals")
	sizeStream := root.Derive("sizes")
	policyStream := root.Derive("policy")

	meanSize := cfg.JobSize.Mean()
	lambda := cfg.Lambda()
	mu := 1 / meanSize
	if len(cfg.Replay) > 0 && cfg.Duration > 0 {
		// Trace-driven runs: report the trace's empirical rates to the
		// policy.
		lambda = float64(len(cfg.Replay)) / cfg.Duration
		var total float64
		for _, r := range cfg.Replay {
			total += r.Size
		}
		mu = 1 / (total / float64(len(cfg.Replay)))
	}

	arrivals := cfg.Arrivals
	if arrivals == nil {
		var interArrival dist.Distribution
		if cfg.ExponentialArrivals || cfg.ArrivalCV == 1 {
			interArrival = dist.NewExponential(1 / lambda)
		} else {
			interArrival = dist.FitHyperExp2(1/lambda, cfg.ArrivalCV)
		}
		arrivals = RenewalProcess{Gap: interArrival}
	} else if len(cfg.Replay) == 0 {
		if v, ok := arrivals.(interface{ Validate() error }); ok {
			if err := v.Validate(); err != nil {
				return nil, err
			}
		}
		lambda = arrivals.MeanRate()
	}

	// Parameter drift. Everything is gated on an enabled drift config so
	// that drift-free runs stay bit-identical: no extra stream
	// derivation, no extra events, no perturbed plan inputs.
	var dr *drift.Config
	if cfg.Drift.Enabled() {
		dr = cfg.Drift
		if dr.Arrival != nil {
			// The schedule changes the truth the run evolves under;
			// lambda (the belief reported to the policy) stays the base
			// rate the plan would be built from.
			arrivals = drift.Modulated{Base: arrivals, Schedule: dr.Arrival}
		}
	}

	en := &sim.Engine{}
	ctx := &Context{
		Engine:      en,
		Speeds:      cfg.Speeds,
		Utilization: cfg.Utilization,
		Lambda:      lambda,
		Mu:          mu,
		RNG:         policyStream,
		Horizon:     cfg.Duration,
	}
	if dr != nil && dr.Misest.Enabled() {
		// One-shot misestimation: the policy plans from perturbed inputs
		// while the simulated world keeps the true values. The dedicated
		// stream is derived only here, so runs without misestimation are
		// unaffected.
		rhoHat, speedsHat := dr.Misest.Apply(cfg.Utilization, cfg.Speeds, root.Derive("drift.misest"))
		ctx.Utilization = rhoHat
		ctx.Speeds = speedsHat
		sumHat := 0.0
		for _, s := range speedsHat {
			sumHat += s
		}
		ctx.Lambda = rhoHat * sumHat * mu
	}
	if err := policy.Init(ctx); err != nil {
		return nil, fmt.Errorf("cluster: policy %s init: %w", policy.Name(), err)
	}

	warmup := cfg.Duration * cfg.WarmupFraction

	// The run's job allocator: every Job comes from the arena and is
	// recycled at its terminal event (completion, shed, drop, loss), so
	// the steady-state arrival/departure cycle performs no heap
	// allocation. releaseJob is the single recycling gate; the timer check
	// is a belt-and-braces guard — every terminal path cancels the job's
	// timers first, and a job with a live timer must not be recycled.
	arena := sim.NewJobArena()
	releaseJob := func(j *sim.Job) {
		if j.TimeoutEvent.Active() || j.DeadlineEvent.Active() || j.AckEvent.Active() {
			return // a pending timer still references the job
		}
		arena.Put(j)
	}

	// Overload protection. Like faults, everything is gated on an enabled
	// config so that unprotected runs stay bit-identical: no extra stream
	// derivation, no extra events, no changed dispatch path.
	var ov *overloadRun
	if cfg.Overload.Enabled() {
		var err error
		ov, err = newOverloadRun(en, cfg.Overload, n, policy, warmup)
		if err != nil {
			return nil, err
		}
		ov.arena = arena
		ov.release = releaseJob
		if cfg.Overload.Deadline != nil {
			ov.deadlines = root.Derive("overload.deadline")
		}
	}

	// Observability. The probe is treated as nil unless it actually does
	// something; every probe touch below is gated on pb != nil, so
	// probe-less runs stay bit-identical: no extra random stream is
	// derived and no extra events are scheduled.
	pb := cfg.Probe
	if !pb.Enabled() {
		pb = nil
	}
	if pb != nil {
		pb.Start(n, 0)
	}
	// Span layer (tracing v2): per-job response-time decomposition. Like
	// every probe facility it is gated — spans-off runs make none of the
	// span hook calls below, so they stay bit-identical and pay nothing.
	spansOn := pb != nil && pb.SpansOn()
	if spansOn {
		pb.StartSpans(cfg.Speeds, terminalCauses())
	}

	// Network/control-plane faults. Gated on an enabled config like
	// every other subsystem: a disabled config derives no substreams,
	// schedules no events and leaves the dispatch path untouched, so
	// netfault-off runs stay bit-identical. Construction happens here
	// (stream derivation is order-independent); the closures are wired
	// below once the servers and the other layers exist.
	var nf *netfaultRun
	if cfg.Netfault.Enabled() {
		nf = newNetfaultRun(en, cfg.Netfault, n, root, cfg.Duration)
		nf.arena = arena
		nf.speeds = ctx.Speeds
		nf.rho = ctx.Utilization
		if rp, ok := policy.(Replannable); ok {
			nf.replan = rp
		}
		if pb != nil {
			nf.pb = pb
			pb.StartNetfault(0)
		}
	}

	// Physical control plane. Same gating discipline: a disabled config
	// derives no "ctrl.*" substreams and the policies keep the oracle
	// StateView, so ctrl-off runs stay bit-identical. The plane is bound
	// to the policy and the servers below, once both exist.
	var plane *ctrlplane.Plane
	if cfg.Ctrl.Enabled() {
		plane = ctrlplane.NewPlane(en, cfg.Ctrl, n, root, cfg.Duration)
		if pb != nil {
			pb.StartCtrl(0)
			plane.SetHooks(ctrlplane.Hooks{
				Event: func(t float64, kind ctrlplane.MsgEvent, target int, cause string, value float64) {
					pb.Emit(probe.Event{T: t, Kind: ctrlEventKind(kind), Target: target, Cause: cause, Value: value})
				},
				InFlight:  pb.SetCtrlInFlight,
				Staleness: pb.NoteCtrlStaleness,
			})
		}
	}

	var respTime, respRatio stats.Accumulator
	var respTimeDeg, respRatioDeg stats.Accumulator
	// Response ratios range from 1/maxSpeed (an undisturbed job on the
	// fastest computer) to arbitrarily large under congestion; log bins
	// cover the practical range for percentile estimates.
	ratioHist := stats.NewLogHistogram(1e-3, 1e6, 360)
	counts := make([]int64, n)
	var observed int64
	var generated, inSystem int64

	servers := make([]sim.Server, n)

	// trackSys mirrors the in-system count into the probe's series after
	// every change.
	trackSys := func() {
		if pb != nil {
			pb.SetInSystem(en.Now(), inSystem)
		}
	}

	// finalize records a job's terminal outcome exactly once: the probe's
	// terminal lifecycle event (every job) and cfg.OnFinal (post-warm-up
	// jobs, consistent with OnDeparture). Overlapping subsystems may race
	// to a job's end — a deadline kill followed by the held job's eventual
	// completion, a shed of an already-condemned job — so the Finalized
	// flag arbitrates.
	outcomes := make([]int64, numOutcomes)
	finalize := func(j *sim.Job, o Outcome) {
		if j.Finalized {
			return
		}
		j.Finalized = true
		outcomes[o]++
		if nf != nil {
			nf.jobDone(j)
		}
		if pb != nil {
			kind, cause := o.probeEvent()
			pb.Emit(probe.Event{T: en.Now(), Kind: kind, Job: j.ID, Target: j.Target, Cause: cause, Attempt: j.Attempts + j.Retries})
			if spansOn {
				// Close the job's span before OnFinal so the callback can
				// fetch the decomposition via LastFinal. counted mirrors
				// the respTime filter exactly: completed jobs arriving
				// after warmup are the ones T̄ averages.
				pb.SpanFinal(j, cause, o.Completed(), o.Completed() && j.Arrival >= warmup, en.Now())
			}
		}
		if cfg.OnFinal != nil && j.Arrival >= warmup {
			cfg.OnFinal(j, o)
		}
	}

	// Adaptive re-planning; constructed after the servers exist, but
	// declared here so the dispatch closures below can hook it.
	var ad *adaptiveRun

	onDepart := func(j *sim.Job) {
		if pb != nil && j.Target >= 0 {
			pb.SetQueueLen(en.Now(), j.Target, servers[j.Target].InService())
		}
		if ov != nil {
			if !ov.preDepart(j) {
				// A condemned job's completion: the deadline kill already
				// counted it out of the system and the statistics.
				releaseJob(j)
				return
			}
		} else {
			policy.Departed(j)
		}
		if ad != nil {
			ad.noteCompletion(j)
		}
		inSystem--
		trackSys()
		outcome := OutcomeCompleted
		if j.Deadline > 0 && j.Completion > j.Deadline {
			outcome = OutcomeLate
		}
		finalize(j, outcome)
		if j.Arrival >= warmup {
			respTime.Add(j.ResponseTime())
			respRatio.Add(j.ResponseRatio())
			ratioHist.Add(j.ResponseRatio())
			if j.Degraded {
				respTimeDeg.Add(j.ResponseTime())
				respRatioDeg.Add(j.ResponseRatio())
			}
			if cfg.OnDeparture != nil {
				cfg.OnDeparture(j)
			}
		}
		releaseJob(j)
	}

	// overloadServer is what the overload layer needs from a server:
	// eviction (shared with the fault injector) and single-job removal.
	type overloadServer interface {
		sim.Preemptable
		sim.Removable
	}
	var removers []sim.Removable
	if ov != nil {
		removers = make([]sim.Removable, n)
	}
	// Speed drift needs the underlying PS servers (validate enforces the
	// PS discipline when steps are configured).
	var psBases []*sim.PSServer
	if dr != nil && len(dr.SpeedSteps) > 0 {
		psBases = make([]*sim.PSServer, n)
	}
	for i, s := range cfg.Speeds {
		dep := onDepart
		var bptr *sim.Bounded
		if ov != nil && cfg.Overload.QueueCap > 0 {
			// The bounded wrapper must see the departure before the run
			// statistics so its occupancy is current.
			dep = func(j *sim.Job) {
				bptr.NoteDeparture(j)
				onDepart(j)
			}
		}
		var base overloadServer
		switch cfg.Discipline {
		case PS:
			base = sim.NewPSServer(en, s, dep)
		case RR:
			base = sim.NewRRServer(en, s, cfg.Quantum, dep)
		case FCFS:
			base = sim.NewFCFSServer(en, s, dep)
		default:
			return nil, fmt.Errorf("cluster: unknown discipline %v", cfg.Discipline)
		}
		if psBases != nil {
			psBases[i] = base.(*sim.PSServer)
		}
		if ov != nil && cfg.Overload.QueueCap > 0 {
			idx := i
			b := sim.NewBounded(base, cfg.Overload.QueueCap, cfg.Overload.Drop,
				func(j *sim.Job) { ov.shed(idx, j) })
			bptr = b
			servers[i] = b
			removers[i] = b
		} else {
			servers[i] = base
			if ov != nil {
				removers[i] = base
			}
		}
	}

	if psBases != nil {
		for _, step := range dr.SpeedSteps {
			step := step
			en.Schedule(step.At, func() {
				if step.Computer >= 0 {
					psBases[step.Computer].SetSpeed(cfg.Speeds[step.Computer] * step.Factor)
					return
				}
				for i, ps := range psBases {
					ps.SetSpeed(cfg.Speeds[i] * step.Factor)
				}
			})
		}
	}

	// Bind the control plane before the state view: a CtrlAware policy
	// re-routes its token traffic and replaces its replicas' oracle
	// views with the plane's probing views during BindState. The plane
	// answers probes that physically arrive from the live servers.
	if plane != nil {
		plane.BindSource(serverStateView(servers))
		if ca, ok := policy.(CtrlAware); ok {
			ca.BindCtrl(plane)
		}
	}
	// Bind the queue-state view for state-aware policies (the scalable-
	// dispatch family). This must happen after the servers exist and
	// before the first arrival; Init runs too early. Stateless policies
	// don't implement StateAware, so their path is untouched.
	if sa, ok := policy.(StateAware); ok {
		sa.BindState(serverStateView(servers))
	}
	// Per-dispatcher probe attribution, gated on the probe like every
	// other instrumentation path so probe-off runs stay bit-identical.
	var shardOf func() int
	if pb != nil {
		if sp, ok := policy.(ShardedPolicy); ok && sp.Shards() > 1 {
			pb.StartShards(sp.Shards())
			shardOf = sp.LastShard
		}
	}

	var devTracker *deviationTracker
	if cfg.DeviationInterval > 0 {
		fp, ok := policy.(FractionProvider)
		if !ok {
			return nil, fmt.Errorf("cluster: policy %s cannot provide fractions for deviation tracking", policy.Name())
		}
		devTracker = newDeviationTracker(fp.Fractions(), cfg.DeviationInterval)
	}

	// sendTo routes a dispatched job towards a computer: straight into
	// the servers (deliverTo, below) normally, or through the netfault
	// transit stage when the fault layer is active. Declared ahead of
	// the failure-injection block because the requeue closure captures
	// it; assigned once the servers exist.
	var sendTo func(target int, j *sim.Job)

	// Failure injection. Everything here is gated on an enabled fault
	// config so that fault-free runs stay bit-identical: no extra stream
	// derivation, no extra events, no changed dispatch path.
	var inj *faults.Injector
	// maskFn renders the availability mask (fault up-state AND breaker
	// closed) for dispatch events; bound after the injector exists, and
	// only when events are on.
	var maskFn func() string
	if cfg.Faults.Enabled() {
		preempt := make([]sim.Preemptable, n)
		for i, s := range servers {
			p, ok := s.(sim.Preemptable)
			if !ok {
				return nil, fmt.Errorf("cluster: %v servers do not support eviction", cfg.Discipline)
			}
			preempt[i] = p
		}
		// notify tells a fault-aware policy the up-set as of detection
		// time; flaps shorter than the detection lag collapse into one
		// observation of the final state. With overload protection active
		// the mask is combined with the breaker states.
		notify := func() {
			if ov != nil {
				ov.faultsUp = inj.UpSet()
				ov.notifyUpSet()
				return
			}
			if fa, ok := policy.(FaultAware); ok {
				up := inj.UpSet()
				if nf != nil {
					// A cut link masks its computer just like a failure:
					// the dispatcher cannot reach it either way.
					for i := range up {
						up[i] = up[i] && nf.linkUp(i)
					}
				}
				fa.UpSetChanged(up)
			}
		}
		onChange := func(int) {
			if _, ok := policy.(FaultAware); !ok {
				return
			}
			if cfg.Faults.DetectionLag > 0 {
				en.ScheduleAfter(cfg.Faults.DetectionLag, notify)
			} else {
				notify()
			}
		}
		// Requeued jobs are re-dispatched through the policy but do not
		// re-enter the job-fraction, deviation, or arrival counts: those
		// track the scheduler's first dispatch decision per job.
		requeue := func(j *sim.Job) {
			if nf != nil {
				// The job verifiably left its failed computer: clear the
				// delivery state so its re-dispatch is not deduplicated.
				nf.reclaim(j)
			}
			if ov != nil {
				// A half-open probe evicted by its computer's failure is a
				// failed probe: record the outcome against the probed
				// breaker before the job re-enters the pool as a normal
				// job — otherwise it would carry its probe mark to another
				// computer and close the wrong breaker on completion,
				// leaving the probed one stuck half-open forever.
				ov.probeFailed(j)
				// Route through the overload dispatcher so requeued jobs
				// respect breakers, rejection and timeouts too.
				ov.dispatch(j, false)
				return
			}
			target := policy.Select(j)
			if target < 0 || target >= n {
				panic(fmt.Sprintf("cluster: policy %s selected invalid computer %d", policy.Name(), target))
			}
			j.Target = target
			if pb != nil && !j.Finalized {
				var mask string
				if maskFn != nil {
					mask = maskFn()
				}
				pb.Emit(probe.Event{T: en.Now(), Kind: probe.EvDispatch, Job: j.ID, Target: target, Attempt: j.Attempts + j.Retries, Mask: mask})
			}
			sendTo(target, j)
		}
		hooks := faults.Hooks{
			OnFail: func(i int) {
				if pb != nil {
					now := en.Now()
					pb.SetUp(now, i, false)
					pb.SetQueueLen(now, i, servers[i].InService())
					pb.Emit(probe.Event{T: now, Kind: probe.EvFail, Target: i})
				}
				onChange(i)
			},
			OnRepair: func(i int) {
				if pb != nil {
					now := en.Now()
					pb.SetUp(now, i, true)
					pb.SetQueueLen(now, i, servers[i].InService())
					pb.Emit(probe.Event{T: now, Kind: probe.EvRepair, Target: i})
				}
				onChange(i)
			},
			Requeue: requeue,
			OnLost: func(j *sim.Job) {
				if ov != nil {
					ov.jobLost(j)
				}
				// A job the deadline already condemned was finalized and
				// counted out of the system by deadlineExpire; the fault
				// layer surfacing it later only hands back the Job for
				// recycling — decrementing again would drive the
				// in-system ledger negative.
				if !j.Finalized {
					inSystem--
					trackSys()
					finalize(j, OutcomeLostFailure)
				}
				releaseJob(j)
			},
		}
		if pb != nil {
			hooks.OnEnterService = func(i int, j *sim.Job) {
				if !j.Finalized {
					pb.Emit(probe.Event{T: en.Now(), Kind: probe.EvServiceStart, Job: j.ID, Target: i})
				}
				if spansOn {
					pb.SpanServe(i, j, en.Now())
				}
			}
			hooks.OnEvict = func(i int, j *sim.Job) {
				if !j.Finalized {
					pb.Emit(probe.Event{T: en.Now(), Kind: probe.EvEvict, Job: j.ID, Target: i})
				}
				if spansOn {
					pb.SpanEvict(i, j, en.Now())
				}
			}
			hooks.OnResume = func(i int, j *sim.Job) {
				if !j.Finalized {
					pb.Emit(probe.Event{T: en.Now(), Kind: probe.EvResume, Job: j.ID, Target: i})
				}
				if spansOn {
					pb.SpanServe(i, j, en.Now())
				}
			}
		}
		var err error
		inj, err = faults.NewInjector(en, cfg.Faults, preempt, root.Derive("faults"), cfg.Duration, hooks)
		if err != nil {
			return nil, err
		}
		inj.Start()
	}
	if pb != nil && pb.EventsOn() {
		maskBuf := make([]byte, n)
		maskFn = func() string {
			for i := range maskBuf {
				up := (inj == nil || inj.Up(i)) && ov.breakerClosed(i) &&
					(nf == nil || nf.linkUp(i))
				if up {
					maskBuf[i] = '1'
				} else {
					maskBuf[i] = '0'
				}
			}
			return string(maskBuf)
		}
	}

	// deliverTo physically lands a job at computer target: through the
	// fault injector when one is active, else straight into the server.
	// It is the terminal stage of every dispatch path — sendTo is either
	// this (reliable network) or the netfault transit stage ending here.
	deliverTo := func(target int, j *sim.Job) {
		if pb != nil {
			pb.NoteDelivery(target, en.Now())
			if spansOn {
				pb.SpanArrive(target, j, en.Now())
			}
		}
		if inj != nil {
			inj.Arrive(target, j)
		} else {
			if pb != nil && !j.Finalized {
				pb.Emit(probe.Event{T: en.Now(), Kind: probe.EvServiceStart, Job: j.ID, Target: target})
			}
			if spansOn {
				pb.SpanServe(target, j, en.Now())
			}
			servers[target].Arrive(j)
		}
		if pb != nil {
			pb.SetQueueLen(en.Now(), target, servers[target].InService())
		}
	}
	sendTo = deliverTo
	if nf != nil {
		nf.deliver = deliverTo
		sendTo = func(target int, j *sim.Job) { nf.send(target, j, true) }
	}
	if plane != nil {
		// Query round-trips cost real time: the decision the policy just
		// made waited for its probes (or their timeout), so the job
		// leaves the dispatcher that much later. Installed before the
		// spans wrapper (which ends up outermost), so SpanSend stamps
		// the pre-wait time and the wait lands in the span's network
		// component.
		if dc, ok := policy.(DecisionCost); ok {
			inner := sendTo
			sendTo = func(target int, j *sim.Job) {
				if d := dc.TakeDecisionCost(); d > 0 {
					// The job is held across simulated time, where a
					// deadline or timeout can reach a terminal outcome
					// first and recycle it — hold a generation-checked
					// handle and let a dead one drop the delivery (the
					// job already finished; there is nothing to deliver).
					ref := arena.Ref(j)
					en.ScheduleAfter(d, func() {
						if jj, ok := ref.Load(); ok && !jj.Finalized {
							inner(target, jj)
						}
					})
					return
				}
				inner(target, j)
			}
		}
	}
	if spansOn {
		// Every dispatch path — first dispatch, overload retry, failure
		// requeue, netfault redispatch — routes through the sendTo var
		// (closures capture it by reference), so one wrapper marks the
		// span's transition onto the network. Installed before the
		// overload wiring below, which copies the value into ov.arrive.
		// The netfault failover path calls nf.send directly and hooks the
		// span explicitly in failoverSend.
		inner := sendTo
		sendTo = func(target int, j *sim.Job) {
			pb.SpanSend(j, en.Now())
			inner(target, j)
		}
	}

	if ov != nil {
		ov.servers = servers
		ov.removers = removers
		ov.pb = pb
		ov.mask = maskFn
		ov.final = finalize
		ov.onDrop = func(*sim.Job) {
			inSystem--
			trackSys()
		}
		ov.onFirstDispatch = func(j *sim.Job, target int) {
			if j.Arrival >= warmup {
				counts[target]++
				observed++
			}
			if devTracker != nil {
				devTracker.observe(j.Arrival, target)
			}
			if pb != nil {
				pb.NoteSubstream(target, j.Arrival)
				if shardOf != nil {
					pb.NoteShard(shardOf(), j.Arrival)
				}
			}
			if inj != nil && inj.AnyDown() {
				j.Degraded = true
			}
		}
		ov.arrive = sendTo
		if nf != nil {
			ov.netUp = nf.linkUp
			ov.netReclaim = nf.reclaim
		}
	}

	// Wire the netfault layer's remaining closures now that the servers
	// and the other layers exist, and schedule its autonomous events.
	if nf != nil {
		nf.departed = func(j *sim.Job) {
			if ov != nil && j.Probe {
				// An unacked breaker probe counts as a failed probe.
				ov.probeFailed(j)
				return
			}
			policy.Departed(j)
		}
		nf.redispatch = func(j *sim.Job) {
			if ov != nil {
				ov.dispatch(j, false)
				return
			}
			target := policy.Select(j)
			if target < 0 || target >= n {
				panic(fmt.Sprintf("cluster: policy %s selected invalid computer %d", policy.Name(), target))
			}
			j.Target = target
			if pb != nil {
				var mask string
				if maskFn != nil {
					mask = maskFn()
				}
				pb.Emit(probe.Event{T: en.Now(), Kind: probe.EvDispatch, Job: j.ID, Target: target, Attempt: j.Attempts + j.Retries, Mask: mask})
			}
			sendTo(target, j)
		}
		nf.giveUp = func(j *sim.Job) {
			if ov != nil {
				ov.jobLost(j)
			}
			inSystem--
			trackSys()
			finalize(j, OutcomeLostNetwork)
			releaseJob(j)
		}
		nf.dropDown = func(j *sim.Job) {
			// Rejected before entering the system: no in-system charge,
			// no timers armed.
			finalize(j, OutcomeDroppedDispatcher)
			releaseJob(j)
		}
		nf.reachable = func(i int) bool {
			return nf.linkUp(i) && (inj == nil || inj.Up(i)) && ov.breakerClosed(i)
		}
		nf.notifyMask = func() {
			if ov != nil {
				ov.notifyUpSet()
				return
			}
			if fa, ok := policy.(FaultAware); ok {
				up := make([]bool, n)
				for i := range up {
					up[i] = (inj == nil || inj.Up(i)) && nf.linkUp(i)
				}
				fa.UpSetChanged(up)
			}
		}
		nf.failoverSend = func(j *sim.Job, target int) {
			// The backup's routing decision is the job's first dispatch:
			// it enters the books like a policy decision, but bypasses
			// admission control and deadline stamping (the backup is a
			// last-resort router, not a dispatcher).
			j.Target = target
			if j.Arrival >= warmup {
				counts[target]++
				observed++
			}
			if devTracker != nil {
				devTracker.observe(j.Arrival, target)
			}
			if pb != nil {
				var mask string
				if maskFn != nil {
					mask = maskFn()
				}
				pb.Emit(probe.Event{T: en.Now(), Kind: probe.EvDispatch, Job: j.ID, Target: target, Cause: "failover", Mask: mask})
				pb.NoteSubstream(target, j.Arrival)
			}
			if inj != nil && inj.AnyDown() {
				j.Degraded = true
			}
			inSystem++
			trackSys()
			if spansOn {
				pb.SpanSend(j, en.Now())
			}
			nf.send(target, j, false)
		}
		nf.start()
	}

	if cfg.Adapt.Enabled() {
		var err error
		ad, err = newAdaptiveRun(cfg.Adapt, en, cfg.Speeds, servers, policy, ctx.Utilization, func() int64 { return inSystem })
		if err != nil {
			return nil, err
		}
		ad.bindProbe(pb)
		ad.start(cfg.Duration)
	}

	// admit dispatches one job of the given size at the current time. Jobs
	// come from the arena: a recycled Job is field-identical to a freshly
	// allocated one (Put zeroes every exported field), so reuse cannot
	// change simulation results.
	// routeJob runs a job through the dispatcher proper: admission
	// control, policy selection and delivery. Called at arrival time
	// normally, and at restart time for jobs buffered while the
	// dispatcher was down (hence the en.Now()/j.Arrival distinction:
	// events are stamped now, statistics key on the arrival).
	routeJob := func(j *sim.Job) {
		if ov != nil {
			if !ov.admitJob(j) {
				finalize(j, OutcomeRejectedAdmission)
				releaseJob(j)
				return
			}
			inSystem++
			trackSys()
			ov.dispatch(j, true)
			return
		}
		target := policy.Select(j)
		if target < 0 || target >= n {
			panic(fmt.Sprintf("cluster: policy %s selected invalid computer %d", policy.Name(), target))
		}
		j.Target = target
		if j.Arrival >= warmup {
			counts[target]++
			observed++
		}
		if devTracker != nil {
			devTracker.observe(j.Arrival, target)
		}
		if pb != nil {
			var mask string
			if maskFn != nil {
				mask = maskFn()
			}
			pb.Emit(probe.Event{T: en.Now(), Kind: probe.EvDispatch, Job: j.ID, Target: target, Mask: mask})
			pb.NoteSubstream(target, j.Arrival)
			if shardOf != nil {
				pb.NoteShard(shardOf(), j.Arrival)
			}
		}
		inSystem++
		trackSys()
		if inj != nil && inj.AnyDown() {
			j.Degraded = true
		}
		sendTo(target, j)
	}
	if nf != nil {
		nf.routeJob = routeJob
	}

	admit := func(size float64) {
		now := en.Now()
		generated++
		if ad != nil {
			ad.noteArrival(now, size)
		}
		j := arena.Get()
		j.ID = generated
		j.Size = size
		j.Arrival = now
		j.Target = -1
		if pb != nil {
			pb.Emit(probe.Event{T: now, Kind: probe.EvArrival, Job: j.ID, Target: -1})
			if spansOn {
				pb.SpanAdmit(j, now)
			}
		}
		if nf != nil && nf.interceptArrival(j) {
			return // dropped, buffered or failed over while down
		}
		routeJob(j)
	}

	if len(cfg.Replay) > 0 {
		// Trace-driven arrivals: schedule each recorded job at its
		// recorded time, one event ahead to keep the heap small. A single
		// closure walks the trace so the chain allocates nothing per job.
		idx := 0
		var fire func()
		fire = func() {
			r := cfg.Replay[idx]
			idx++
			admit(r.Size)
			if idx < len(cfg.Replay) && cfg.Replay[idx].Arrival <= cfg.Duration {
				en.Schedule(cfg.Replay[idx].Arrival, fire)
			}
		}
		if cfg.Replay[0].Arrival <= cfg.Duration {
			en.Schedule(cfg.Replay[0].Arrival, fire)
		}
	} else {
		// Synthetic arrivals: the arrival process (default: a renewal
		// process with the configured inter-arrival distribution) with
		// sampled sizes. One closure reschedules itself, so the
		// steady-state arrival chain allocates nothing: together with the
		// arena and the engine's slab storage this keeps the whole
		// unprotected hot path allocation-free.
		var onArrival func()
		onArrival = func() {
			if en.Now() > cfg.Duration {
				return // admission closes at the horizon
			}
			admit(cfg.JobSize.Sample(sizeStream))
			en.Schedule(arrivals.Next(en.Now(), arrStream), onArrival)
		}
		en.Schedule(arrivals.Next(en.Now(), arrStream), onArrival)
	}

	// Cadence sampling: read queue lengths, utilization deltas and the
	// in-system count every SampleDT. The chain self-terminates at the
	// horizon so the drain completes.
	if pb != nil && pb.SampleDT() > 0 {
		qls := make([]int, n)
		busy := make([]float64, n)
		var psample func(k int)
		psample = func(k int) {
			t := float64(k) * pb.SampleDT()
			if t > cfg.Duration {
				return
			}
			en.Schedule(t, func() {
				for i := range servers {
					qls[i] = servers[i].InService()
					busy[i] = servers[i].BusyTime()
				}
				pb.Sample(en.Now(), qls, busy, inSystem)
				psample(k + 1)
			})
		}
		psample(1)
	}

	var samples []int64
	if cfg.SampleInterval > 0 {
		var sample func(k int)
		sample = func(k int) {
			t := float64(k) * cfg.SampleInterval
			if t > cfg.Duration {
				return
			}
			en.Schedule(t, func() {
				samples = append(samples, inSystem)
				sample(k + 1)
			})
		}
		sample(1)
	}

	if *cfg.Drain {
		// Run to the horizon, then let in-flight jobs finish. The pending
		// arrival event beyond the horizon self-cancels via the time
		// check.
		en.RunUntil(cfg.Duration)
		en.RunUntil(math.Inf(1))
	} else {
		en.RunUntil(cfg.Duration)
	}
	endTime := math.Max(en.Now(), cfg.Duration)
	if pb != nil {
		pb.FinishRun(endTime)
	}

	res := &Result{
		Policy:            policy.Name(),
		MeanResponseTime:  respTime.Mean(),
		MeanResponseRatio: respRatio.Mean(),
		Fairness:          respRatio.PopStdDev(),
		Jobs:              respTime.N(),
		JobFractions:      make([]float64, n),
		Utilizations:      make([]float64, n),
		RatioP50:          ratioHist.Quantile(0.50),
		RatioP95:          ratioHist.Quantile(0.95),
		RatioP99:          ratioHist.Quantile(0.99),
		GeneratedJobs:     generated,
		Outcomes:          outcomes,
		FinalInSystem:     inSystem,
		SimulatedTime:     endTime,
	}
	for i := range cfg.Speeds {
		if observed > 0 {
			res.JobFractions[i] = float64(counts[i]) / float64(observed)
		}
		res.Utilizations[i] = servers[i].BusyTime() / endTime
	}
	if devTracker != nil {
		res.Deviations = devTracker.deviations(cfg.Duration)
	}
	if ov != nil {
		res.Overload = ov.finish()
	}
	if cfg.SampleInterval > 0 {
		res.InSystemSeries = samples
	}
	if ad != nil {
		res.Adaptive = ad.finish()
	}
	if nf != nil {
		res.Netfault = nf.finish()
	}
	if plane != nil {
		res.Ctrl = plane.Finish()
	}
	if inj != nil {
		inj.Finish(endTime)
		res.Availability = make([]float64, n)
		for i := range res.Availability {
			res.Availability[i] = inj.Availability(i)
		}
		res.Failures = inj.Failures()
		res.Repairs = inj.Repairs()
		res.JobsLost = inj.JobsLost()
		res.JobsRequeued = inj.JobsRequeued()
		res.JobsRestarted = inj.JobsRestarted()
		res.JobsResumed = inj.JobsResumed()
		res.DegradedTime = inj.DegradedTime()
		res.DegradedJobs = respTimeDeg.N()
		res.MeanResponseTimeDegraded = respTimeDeg.Mean()
		res.MeanResponseRatioDegraded = respRatioDeg.Mean()
	}
	return res, nil
}

// deviationTracker implements the Figure 2 measurement: per-interval
// workload allocation deviation Σ(α_i − α'_i)².
type deviationTracker struct {
	expected []float64
	length   float64
	counts   []int64
	boundary float64
	devs     []float64
}

func newDeviationTracker(expected []float64, length float64) *deviationTracker {
	cp := make([]float64, len(expected))
	copy(cp, expected)
	return &deviationTracker{
		expected: cp,
		length:   length,
		counts:   make([]int64, len(expected)),
		boundary: length,
	}
}

func (d *deviationTracker) observe(t float64, target int) {
	for t >= d.boundary {
		d.close()
	}
	d.counts[target]++
}

func (d *deviationTracker) close() {
	total := int64(0)
	for _, c := range d.counts {
		total += c
	}
	dev := 0.0
	if total > 0 {
		for i, c := range d.counts {
			diff := d.expected[i] - float64(c)/float64(total)
			dev += diff * diff
		}
	}
	d.devs = append(d.devs, dev)
	for i := range d.counts {
		d.counts[i] = 0
	}
	d.boundary += d.length
}

func (d *deviationTracker) deviations(horizon float64) []float64 {
	for d.boundary <= horizon {
		d.close()
	}
	out := make([]float64, len(d.devs))
	copy(out, d.devs)
	return out
}

// Summary aggregates a metric across replications.
type Summary struct {
	Mean float64 // mean across replications
	CI95 float64 // 95% Student-t half-width
	N    int     // replications
}

// ReplicatedResult aggregates replications of one (config, policy) cell.
type ReplicatedResult struct {
	Policy            string
	MeanResponseTime  Summary
	MeanResponseRatio Summary
	Fairness          Summary
	// JobFractions[i] is the across-replication mean fraction of jobs on
	// computer i.
	JobFractions []float64
	// Utilizations[i] is the across-replication mean utilization.
	Utilizations []float64
	// Availability[i] is the across-replication mean observed
	// availability of computer i; nil when the runs had no fault
	// injection.
	Availability []float64
	// JobsLost and MeanResponseTimeDegraded summarize the fault metrics
	// across replications (zero-valued without fault injection).
	JobsLost                 Summary
	MeanResponseTimeDegraded Summary
	// Runs holds the individual run results, in replication order.
	Runs []*Result
}

// PolicyFactory builds a fresh policy instance for each replication (a
// policy instance is stateful and owned by one run).
type PolicyFactory func() Policy

// RunReplications executes reps independent runs — replication r uses seed
// Seed+r — in parallel (bounded by GOMAXPROCS) and aggregates the metrics.
func RunReplications(cfg Config, factory PolicyFactory, reps int) (*ReplicatedResult, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("cluster: reps = %d, must be positive", reps)
	}
	results := make([]*Result, reps)
	errs := make([]error, reps)
	sem := make(chan struct{}, maxParallel())
	var wg sync.WaitGroup
	for r := 0; r < reps; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c := cfg
			c.Seed = cfg.Seed + uint64(r)
			results[r], errs[r] = Run(c, factory())
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return Aggregate(results)
}

// MaxParallel, when positive, caps the number of replications executing
// concurrently in RunReplications and RunUntilPrecision; zero (the
// default) means GOMAXPROCS. Each replication is fully deterministic in
// its seed, so results are independent of this setting — the golden
// tests pin it to several values to prove exactly that.
var MaxParallel int

// maxParallel bounds replication parallelism.
func maxParallel() int {
	if MaxParallel > 0 {
		return MaxParallel
	}
	p := runtime.GOMAXPROCS(0)
	if p < 1 {
		p = 1
	}
	return p
}

// RunUntilPrecision runs replications in batches until the 95% confidence
// interval of the mean response ratio is within relCI of its mean
// (relative half-width), or maxReps replications have run. It returns the
// aggregated result; Converged on the return reports whether the target
// was met. A minimum of 3 replications always runs.
//
// This is the sequential-stopping alternative to the paper's fixed 10
// replications: cheap cells stop early, noisy ones (heavy-tailed
// workloads at high load) get more repetitions.
func RunUntilPrecision(cfg Config, factory PolicyFactory, relCI float64, maxReps int) (*ReplicatedResult, bool, error) {
	if relCI <= 0 {
		return nil, false, fmt.Errorf("cluster: relCI %v must be positive", relCI)
	}
	if maxReps < 3 {
		return nil, false, fmt.Errorf("cluster: maxReps %d must be at least 3", maxReps)
	}
	var runs []*Result
	for rep := 0; rep < maxReps; {
		batch := maxParallel()
		if rep+batch > maxReps {
			batch = maxReps - rep
		}
		if rep == 0 && batch < 3 {
			batch = 3
		}
		results := make([]*Result, batch)
		errs := make([]error, batch)
		var wg sync.WaitGroup
		for k := 0; k < batch; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				c := cfg
				c.Seed = cfg.Seed + uint64(rep+k)
				results[k], errs[k] = Run(c, factory())
			}(k)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, false, err
			}
		}
		runs = append(runs, results...)
		rep += batch
		if rep < 3 {
			continue
		}
		agg, err := Aggregate(runs)
		if err != nil {
			return nil, false, err
		}
		m := agg.MeanResponseRatio
		if m.Mean != 0 && m.CI95/math.Abs(m.Mean) <= relCI {
			return agg, true, nil
		}
	}
	agg, err := Aggregate(runs)
	if err != nil {
		return nil, false, err
	}
	m := agg.MeanResponseRatio
	return agg, m.Mean != 0 && m.CI95/math.Abs(m.Mean) <= relCI, nil
}

// Aggregate combines per-run results into a ReplicatedResult. All runs
// must have the same number of computers.
func Aggregate(runs []*Result) (*ReplicatedResult, error) {
	if len(runs) == 0 {
		return nil, errors.New("cluster: no runs to aggregate")
	}
	n := len(runs[0].JobFractions)
	var rt, rr, fair, lost, rtDeg stats.Sample
	fractions := make([]float64, n)
	utils := make([]float64, n)
	withFaults := runs[0].Availability != nil
	var avail []float64
	if withFaults {
		avail = make([]float64, n)
	}
	for _, run := range runs {
		if len(run.JobFractions) != n {
			return nil, fmt.Errorf("cluster: inconsistent computer counts (%d vs %d)", len(run.JobFractions), n)
		}
		rt.Add(run.MeanResponseTime)
		rr.Add(run.MeanResponseRatio)
		fair.Add(run.Fairness)
		for i := 0; i < n; i++ {
			fractions[i] += run.JobFractions[i] / float64(len(runs))
			utils[i] += run.Utilizations[i] / float64(len(runs))
		}
		if withFaults {
			if run.Availability == nil {
				return nil, errors.New("cluster: mixing fault-injected and fault-free runs")
			}
			lost.Add(float64(run.JobsLost))
			rtDeg.Add(run.MeanResponseTimeDegraded)
			for i := 0; i < n; i++ {
				avail[i] += run.Availability[i] / float64(len(runs))
			}
		}
	}
	agg := &ReplicatedResult{
		Policy:            runs[0].Policy,
		MeanResponseTime:  Summary{rt.Mean(), rt.CI95(), rt.N()},
		MeanResponseRatio: Summary{rr.Mean(), rr.CI95(), rr.N()},
		Fairness:          Summary{fair.Mean(), fair.CI95(), fair.N()},
		JobFractions:      fractions,
		Utilizations:      utils,
		Runs:              runs,
	}
	if withFaults {
		agg.Availability = avail
		agg.JobsLost = Summary{lost.Mean(), lost.CI95(), lost.N()}
		agg.MeanResponseTimeDegraded = Summary{rtDeg.Mean(), rtDeg.CI95(), rtDeg.N()}
	}
	return agg, nil
}
