package cluster

import (
	"fmt"

	"heterosched/internal/probe"
)

// Outcome classifies how a job left the system. Every admitted arrival
// reaches exactly one outcome; Config.OnFinal receives it (OnDeparture,
// by contrast, fires only for completions).
type Outcome int

const (
	// OutcomeCompleted is a normal completion (within deadline, if any).
	OutcomeCompleted Outcome = iota
	// OutcomeLate is a completion after the job's deadline under
	// DeadlineMark (counted as a deadline miss, excluded from goodput).
	OutcomeLate
	// OutcomeKilledDeadline is a deadline expiry under DeadlineKill.
	OutcomeKilledDeadline
	// OutcomeShedOverflow is a bounded-queue overflow shed.
	OutcomeShedOverflow
	// OutcomeDroppedRetryBudget is a drop after the dispatcher retry
	// budget was exhausted (timeouts/rejections).
	OutcomeDroppedRetryBudget
	// OutcomeRejectedAdmission is a drop at admission control (token
	// bucket) before any dispatch.
	OutcomeRejectedAdmission
	// OutcomeLostFailure is a job discarded by the fault machinery (fate
	// Lost, or the failure-requeue budget exhausted).
	OutcomeLostFailure
	// OutcomeLostNetwork is a job the network-fault layer gave up on: its
	// dispatch was never accepted by any computer (lost or blocked on
	// every transmission) and the resubmission budget is exhausted.
	OutcomeLostNetwork
	// OutcomeDroppedDispatcher is a job that arrived while the dispatcher
	// was crashed and was rejected by the downtime policy (drop, or buffer
	// overflow).
	OutcomeDroppedDispatcher

	numOutcomes
)

// NumOutcomes is the number of distinct terminal outcomes; valid
// Outcome values are 0 ≤ o < NumOutcomes. Result.Outcomes has this
// length.
const NumOutcomes = int(numOutcomes)

var outcomeNames = [numOutcomes]string{
	"completed",
	"late",
	"deadline-killed",
	"shed",
	"retry-dropped",
	"rejected",
	"failure-lost",
	"net-lost",
	"dispatcher-drop",
}

// String returns the outcome's wire name, used in traces and manifests.
func (o Outcome) String() string {
	if o < 0 || o >= numOutcomes {
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
	return outcomeNames[o]
}

// ParseOutcome maps a wire name back to its Outcome.
func ParseOutcome(s string) (Outcome, error) {
	for o, name := range outcomeNames {
		if s == name {
			return Outcome(o), nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown outcome %q", s)
}

// Completed reports whether the job finished its work (possibly late), as
// opposed to being killed, shed, dropped, rejected or lost.
func (o Outcome) Completed() bool {
	return o == OutcomeCompleted || o == OutcomeLate
}

// terminalCauses lists every cause string probeEvent can report, in
// outcome order, for pre-registering allocation-free per-cause span
// aggregates.
func terminalCauses() []string {
	out := make([]string, numOutcomes)
	for o := Outcome(0); o < numOutcomes; o++ {
		_, out[o] = o.probeEvent()
	}
	return out
}

// probeEvent maps an outcome to its terminal lifecycle event kind and
// cause string.
func (o Outcome) probeEvent() (probe.EventKind, string) {
	switch o {
	case OutcomeCompleted:
		return probe.EvDeparture, ""
	case OutcomeLate:
		return probe.EvDeparture, "late"
	case OutcomeKilledDeadline:
		return probe.EvKill, "deadline"
	case OutcomeShedOverflow:
		return probe.EvDrop, "shed"
	case OutcomeDroppedRetryBudget:
		return probe.EvDrop, "retry-budget"
	case OutcomeRejectedAdmission:
		return probe.EvDrop, "admission"
	case OutcomeLostFailure:
		return probe.EvDrop, "failure"
	case OutcomeLostNetwork:
		return probe.EvDrop, "network"
	case OutcomeDroppedDispatcher:
		return probe.EvDrop, "dispatcher-down"
	default:
		return probe.EvDrop, o.String()
	}
}
