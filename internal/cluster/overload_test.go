package cluster

import (
	"math"
	"reflect"
	"testing"

	"heterosched/internal/dispatch"
	"heterosched/internal/dist"
	"heterosched/internal/sim"
)

// greedyPolicy always picks computer 0 unless it is masked, then the
// lowest-index up computer — a deliberately bad router that exercises
// rejection, shedding and breaker masking.
type greedyPolicy struct{ up []bool }

func (p *greedyPolicy) Name() string        { return "greedy" }
func (p *greedyPolicy) Init(*Context) error { return nil }
func (p *greedyPolicy) Select(*sim.Job) int {
	if p.up != nil {
		for i, u := range p.up {
			if u {
				return i
			}
		}
	}
	return 0
}
func (p *greedyPolicy) Departed(*sim.Job)      {}
func (p *greedyPolicy) UpSetChanged(up []bool) { p.up = append(p.up[:0], up...) }

// overloadBase is a small overloaded configuration: one unit-speed
// computer offered ρ = 1.5.
func overloadBase() Config {
	return Config{
		Speeds:      []float64{1},
		Utilization: 1.5,
		JobSize:     dist.Deterministic{Value: 1},
		Duration:    2000,
		Seed:        11,
	}
}

// TestOverloadAccounting checks the conservation law of the overload
// counters: after a drained run every admitted job either completed or
// was dropped for an accounted reason.
func TestOverloadAccounting(t *testing.T) {
	cfg := overloadBase()
	// A 4 s deadline under a cap-5 PS queue: a unit job sharing with four
	// others needs 5 s, so queued jobs can and do expire.
	cfg.Overload = &OverloadConfig{
		QueueCap:  5,
		Admission: RejectWhenFull,
		Deadline:  dist.Deterministic{Value: 4},
	}
	res, err := Run(cfg, &fixedPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Overload
	if s == nil {
		t.Fatal("Overload stats missing")
	}
	if s.Admitted != res.GeneratedJobs {
		t.Errorf("Admitted = %d, want all %d arrivals (no token bucket)", s.Admitted, res.GeneratedJobs)
	}
	if got := s.Throughput + s.Dropped(); got != s.Admitted {
		t.Errorf("Throughput %d + Dropped %d = %d, want Admitted %d",
			s.Throughput, s.Dropped(), got, s.Admitted)
	}
	if s.Goodput+s.LateCompletions != s.Throughput {
		t.Errorf("Goodput %d + Late %d != Throughput %d", s.Goodput, s.LateCompletions, s.Throughput)
	}
	// ρ=1.5 into a capped queue must reject and kill; goodput is bounded
	// by the computer's capacity (2000 s of unit-size work).
	if s.RejectedFull == 0 {
		t.Error("RejectedFull = 0, want rejections at ρ=1.5 with cap 5")
	}
	if s.KilledByDeadline == 0 {
		t.Error("KilledByDeadline = 0, want kills with a 30 s deadline at ρ=1.5")
	}
	if s.Goodput > 2100 {
		t.Errorf("Goodput %d exceeds the computer's capacity", s.Goodput)
	}
	if s.TimeP99 < s.TimeP50 || s.TimeP50 <= 0 {
		t.Errorf("percentiles inconsistent: p50=%v p99=%v", s.TimeP50, s.TimeP99)
	}
}

// TestOverloadDeadlineMark: marked (not killed) expiries complete late
// and stay out of goodput.
func TestOverloadDeadlineMark(t *testing.T) {
	cfg := overloadBase()
	cfg.Overload = &OverloadConfig{
		Deadline:       dist.Deterministic{Value: 10},
		DeadlineAction: DeadlineMark,
	}
	res, err := Run(cfg, &fixedPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Overload
	if s.KilledByDeadline != 0 {
		t.Errorf("KilledByDeadline = %d under mark action", s.KilledByDeadline)
	}
	if s.LateCompletions == 0 {
		t.Error("LateCompletions = 0, want late jobs at ρ=1.5 with a 10 s deadline")
	}
	if s.Throughput != s.Admitted {
		t.Errorf("Throughput %d != Admitted %d: mark action must not drop jobs (drained run)",
			s.Throughput, s.Admitted)
	}
	if s.DeadlineMisses != s.LateCompletions {
		t.Errorf("DeadlineMisses %d != LateCompletions %d", s.DeadlineMisses, s.LateCompletions)
	}
}

// TestOverloadTokenBucket: an admission rate of half the offered load
// sheds roughly half the arrivals before dispatch.
func TestOverloadTokenBucket(t *testing.T) {
	cfg := overloadBase()
	cfg.Overload = &OverloadConfig{
		Admission:  TokenBucketAdmission,
		TokenRate:  0.75, // offered rate is 1.5 jobs/s
		TokenBurst: 1,
	}
	res, err := Run(cfg, &fixedPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Overload
	if s.RejectedAdmission == 0 {
		t.Fatal("token bucket rejected nothing at twice its rate")
	}
	if s.Admitted+s.RejectedAdmission != res.GeneratedJobs {
		t.Errorf("Admitted %d + RejectedAdmission %d != Generated %d",
			s.Admitted, s.RejectedAdmission, res.GeneratedJobs)
	}
	// Long-run admitted rate is capped at TokenRate (plus the burst).
	if maxAdmit := int64(0.75*cfg.Duration) + 2; s.Admitted > maxAdmit {
		t.Errorf("Admitted %d exceeds token capacity %d", s.Admitted, maxAdmit)
	}
}

// TestOverloadTimeoutRetry: a timeout far below the attainable response
// time forces retries and, with the budget exhausted, drops.
func TestOverloadTimeoutRetry(t *testing.T) {
	cfg := overloadBase()
	cfg.Overload = &OverloadConfig{
		Timeout:     5,
		RetryBudget: 2,
		BackoffBase: 1,
		BackoffMax:  4,
	}
	res, err := Run(cfg, &fixedPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Overload
	if s.Timeouts == 0 || s.Retries == 0 || s.DroppedRetryBudget == 0 {
		t.Errorf("timeouts=%d retries=%d dropped=%d, want all positive",
			s.Timeouts, s.Retries, s.DroppedRetryBudget)
	}
	if s.Throughput+s.Dropped() != s.Admitted {
		t.Errorf("conservation violated: %d + %d != %d", s.Throughput, s.Dropped(), s.Admitted)
	}
}

// TestOverloadBreakerMasks: a breaker on a hammered computer trips,
// the fault-aware policy routes to the healthy one, and a half-open
// probe eventually closes the breaker again.
func TestOverloadBreakerMasks(t *testing.T) {
	// Poisson arrivals and a generous cap keep the fast computer's queue
	// from ever rejecting 5 times in a row, so only computer 0's breaker
	// cycles: hammer → trip → 200 s masked (jobs flow to computer 1) →
	// probe into the drained queue → close → hammer again.
	cfg := Config{
		Speeds:              []float64{1, 10},
		Utilization:         0.5,
		JobSize:             dist.Deterministic{Value: 1},
		ExponentialArrivals: true,
		Duration:            4000,
		Seed:                3,
		Overload: &OverloadConfig{
			QueueCap:    10,
			Admission:   RejectWhenFull,
			RetryBudget: 1,
			BackoffBase: 0.5,
			BackoffMax:  2,
			Breaker:     &dispatch.BreakerConfig{Consecutive: 5, Cooldown: 200},
		},
	}
	p := &greedyPolicy{}
	res, err := Run(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Overload
	if s.BreakerTrips == 0 {
		t.Fatal("breaker never tripped although computer 0 is hammered")
	}
	if s.BreakerProbes == 0 {
		t.Error("no half-open probe despite a 200 s cooldown in a 4000 s run")
	}
	// Once masked, the greedy policy must route to computer 1: it gets
	// the strict majority of the work.
	if res.JobFractions[1] < 0.5 {
		t.Errorf("fraction on healthy computer = %v, want majority after masking", res.JobFractions[1])
	}
	if s.Throughput+s.Dropped() != s.Admitted {
		t.Errorf("conservation violated: %d + %d != %d", s.Throughput, s.Dropped(), s.Admitted)
	}
}

// TestOverloadDeterminism: identical configs produce identical results,
// including every overload counter.
func TestOverloadDeterminism(t *testing.T) {
	mk := func() (*Result, error) {
		cfg := overloadBase()
		cfg.Overload = &OverloadConfig{
			QueueCap:      4,
			Admission:     RejectWhenFull,
			Deadline:      dist.NewExponential(40),
			Timeout:       25,
			RetryBudget:   2,
			BackoffBase:   1,
			BackoffMax:    8,
			BackoffJitter: 0.5,
		}
		cfg.SampleInterval = 250
		return Run(cfg, &fixedPolicy{})
	}
	a, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical configs diverged:\n%+v\nvs\n%+v", a, b)
	}
	if a.Overload.Retries == 0 {
		t.Error("scenario exercised no retries; weaken it deliberately, not accidentally")
	}
}

// TestInSystemSeriesGrowsUnprotected: without protection the number of
// jobs in the system at ρ = 1.5 grows without bound — later samples
// dominate earlier ones.
func TestInSystemSeriesGrowsUnprotected(t *testing.T) {
	cfg := overloadBase()
	cfg.Duration = 4000
	cfg.SampleInterval = 500
	drain := false
	cfg.Drain = &drain
	res, err := Run(cfg, &fixedPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InSystemSeries) != 8 {
		t.Fatalf("samples = %d, want 8", len(res.InSystemSeries))
	}
	first, last := res.InSystemSeries[0], res.InSystemSeries[len(res.InSystemSeries)-1]
	// Expected backlog growth is (ρ−1)·t = 0.5 jobs/s; require clear
	// growth with slack for stochastic wiggle.
	if last < first+1000 {
		t.Errorf("in-system count barely grew: first=%d last=%d series=%v", first, last, res.InSystemSeries)
	}
	for i := 1; i < len(res.InSystemSeries); i++ {
		if res.InSystemSeries[i] < res.InSystemSeries[i-1]-50 {
			t.Errorf("sample %d dropped sharply: %v", i, res.InSystemSeries)
		}
	}
	if res.Overload != nil {
		t.Error("Overload stats populated without an overload config")
	}
}

// TestOverloadBitIdenticalWhenDisabled: an all-defaults OverloadConfig
// pointer must not perturb the run at all.
func TestOverloadBitIdenticalWhenDisabled(t *testing.T) {
	cfg := Config{
		Speeds:      []float64{1, 2},
		Utilization: 0.7,
		Duration:    10000,
		Seed:        5,
	}
	plain, err := Run(cfg, &splitPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Overload = &OverloadConfig{} // present but disabled
	withCfg, err := Run(cfg, &splitPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, withCfg) {
		t.Errorf("disabled overload config changed the run:\n%+v\nvs\n%+v", plain, withCfg)
	}
	if math.IsNaN(plain.MeanResponseTime) || plain.Jobs == 0 {
		t.Fatalf("degenerate baseline run: %+v", plain)
	}
}
