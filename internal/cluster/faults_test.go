package cluster_test

import (
	"math"
	"reflect"
	"testing"

	"heterosched/internal/cluster"
	"heterosched/internal/dist"
	"heterosched/internal/faults"
	"heterosched/internal/sched"
)

// faultTestConfig is a short fault-injected run used across the tests.
func faultTestConfig(fc *faults.Config) cluster.Config {
	return cluster.Config{
		Speeds:         []float64{1, 1, 2, 10},
		Utilization:    0.3,
		Duration:       5e4,
		WarmupFraction: -1, // no warm-up: every admitted job is counted
		Seed:           7,
		Faults:         fc,
	}
}

// TestFaultsDisabledBitIdentical: a nil fault config and a present-but-
// disabled one must produce byte-identical results — the fault subsystem
// may not perturb fault-free runs in any way.
func TestFaultsDisabledBitIdentical(t *testing.T) {
	base := faultTestConfig(nil)
	a, err := cluster.Run(base, sched.ORR())
	if err != nil {
		t.Fatal(err)
	}
	disabled := faultTestConfig(&faults.Config{})
	b, err := cluster.Run(disabled, sched.ORR())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("disabled fault config changed the result:\n%+v\nvs\n%+v", a, b)
	}
}

// TestFaultsNeverFiringMatchesCoreMetrics: with the injector active but an
// uptime distribution that never fails within the horizon, every job-level
// metric must match the fault-free run exactly (the injector only wraps
// the arrival path).
func TestFaultsNeverFiringMatchesCoreMetrics(t *testing.T) {
	plain, err := cluster.Run(faultTestConfig(nil), sched.ORR())
	if err != nil {
		t.Fatal(err)
	}
	fc := &faults.Config{
		Uptime:   dist.Deterministic{Value: math.Inf(1)},
		Downtime: dist.Deterministic{Value: 1},
	}
	injected, err := cluster.Run(faultTestConfig(fc), sched.ORR())
	if err != nil {
		t.Fatal(err)
	}
	if plain.MeanResponseTime != injected.MeanResponseTime ||
		plain.MeanResponseRatio != injected.MeanResponseRatio ||
		plain.Fairness != injected.Fairness ||
		plain.Jobs != injected.Jobs ||
		plain.GeneratedJobs != injected.GeneratedJobs ||
		!reflect.DeepEqual(plain.JobFractions, injected.JobFractions) ||
		!reflect.DeepEqual(plain.Utilizations, injected.Utilizations) {
		t.Errorf("never-firing injector changed core metrics:\n%+v\nvs\n%+v", plain, injected)
	}
	if injected.Failures != 0 || injected.JobsLost != 0 {
		t.Errorf("spurious fault events: %d failures, %d lost", injected.Failures, injected.JobsLost)
	}
	for i, a := range injected.Availability {
		if a != 1 {
			t.Errorf("availability[%d] = %v, want 1", i, a)
		}
	}
}

// TestFaultsDeterministic: two runs of the same fault-injected
// configuration must agree byte for byte, for each fate policy and both
// reallocation modes.
func TestFaultsDeterministic(t *testing.T) {
	for _, fate := range []faults.Fate{faults.Lost, faults.RestartInPlace, faults.ResumeOnRepair, faults.RequeueToDispatcher} {
		for _, mode := range []sched.ReallocMode{sched.ReallocStale, sched.ReallocResolve} {
			fc := &faults.Config{
				Uptime:       dist.NewExponential(5e3),
				Downtime:     dist.NewExponential(500),
				Fate:         fate,
				DetectionLag: 10,
			}
			mk := func() *sched.Static {
				p := sched.ORR()
				p.Realloc = mode
				return p
			}
			a, err := cluster.Run(faultTestConfig(fc), mk())
			if err != nil {
				t.Fatalf("fate %v mode %v: %v", fate, mode, err)
			}
			b, err := cluster.Run(faultTestConfig(fc), mk())
			if err != nil {
				t.Fatalf("fate %v mode %v: %v", fate, mode, err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("fate %v mode %v: repeated run differs:\n%+v\nvs\n%+v", fate, mode, a, b)
			}
			if a.Failures == 0 {
				t.Errorf("fate %v mode %v: no failures injected (bad test parameters)", fate, mode)
			}
			if a.Failures != a.Repairs {
				t.Errorf("fate %v mode %v: %d failures but %d repairs (drain must repair everything)",
					fate, mode, a.Failures, a.Repairs)
			}
		}
	}
}

// TestFaultsJobConservation: with no warm-up and draining enabled, every
// admitted job either completes or is lost — under hold fates none may be
// lost, under Lost/requeue the counts must balance exactly.
func TestFaultsJobConservation(t *testing.T) {
	for _, tc := range []struct {
		fate      faults.Fate
		mayLose   bool
		wantExact bool
	}{
		{faults.Lost, true, true},
		{faults.RestartInPlace, false, true},
		{faults.ResumeOnRepair, false, true},
		{faults.RequeueToDispatcher, true, true},
	} {
		fc := &faults.Config{
			Uptime:   dist.NewExponential(5e3),
			Downtime: dist.NewExponential(500),
			Fate:     tc.fate,
		}
		res, err := cluster.Run(faultTestConfig(fc), sched.ORR())
		if err != nil {
			t.Fatalf("fate %v: %v", tc.fate, err)
		}
		if got := res.Jobs + res.JobsLost; got != res.GeneratedJobs {
			t.Errorf("fate %v: %d completed + %d lost != %d generated",
				tc.fate, res.Jobs, res.JobsLost, res.GeneratedJobs)
		}
		if !tc.mayLose && res.JobsLost != 0 {
			t.Errorf("fate %v: lost %d jobs", tc.fate, res.JobsLost)
		}
		for i, a := range res.Availability {
			if !(a > 0 && a < 1) {
				t.Errorf("fate %v: availability[%d] = %v outside (0,1)", tc.fate, i, a)
			}
		}
		if res.DegradedTime <= 0 || res.DegradedTime >= res.SimulatedTime {
			t.Errorf("fate %v: degraded time %v of %v implausible", tc.fate, res.DegradedTime, res.SimulatedTime)
		}
	}
}

// TestFaultsDegradedConditioning: jobs arriving during an outage are
// attributed to the degraded metrics, and the degraded mean response time
// is at least the overall one in a regime where outages hurt.
func TestFaultsDegradedConditioning(t *testing.T) {
	fc := &faults.Config{
		Uptime:   dist.NewExponential(3e3),
		Downtime: dist.NewExponential(1e3),
		Fate:     faults.ResumeOnRepair,
	}
	res, err := cluster.Run(faultTestConfig(fc), sched.ORR())
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedJobs == 0 {
		t.Fatal("no degraded jobs observed (bad test parameters)")
	}
	if res.DegradedJobs >= res.Jobs {
		t.Errorf("all %d jobs degraded, expected a mix", res.Jobs)
	}
	// Holding work through outages must make degraded-window jobs slower
	// on average than the overall population.
	if res.MeanResponseTimeDegraded <= res.MeanResponseTime {
		t.Errorf("degraded mean response %v not above overall %v",
			res.MeanResponseTimeDegraded, res.MeanResponseTime)
	}
}
