package cluster

import (
	"math"
	"testing"

	"heterosched/internal/dist"
	"heterosched/internal/queueing"
	"heterosched/internal/sim"
	"heterosched/internal/stats"
)

// fixedPolicy sends every job to one computer.
type fixedPolicy struct{ target int }

func (p *fixedPolicy) Name() string               { return "fixed" }
func (p *fixedPolicy) Init(*Context) error        { return nil }
func (p *fixedPolicy) Select(*sim.Job) int        { return p.target }
func (p *fixedPolicy) Departed(*sim.Job)          {}
func (p *fixedPolicy) Fractions() []float64       { return []float64{1} }
func (p *fixedPolicy) targetFractions() []float64 { return []float64{1} }

// splitPolicy alternates between computers 0 and 1.
type splitPolicy struct{ next int }

func (p *splitPolicy) Name() string        { return "split" }
func (p *splitPolicy) Init(*Context) error { return nil }
func (p *splitPolicy) Select(*sim.Job) int {
	p.next = 1 - p.next
	return p.next
}
func (p *splitPolicy) Departed(*sim.Job)    {}
func (p *splitPolicy) Fractions() []float64 { return []float64{0.5, 0.5} }

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Speeds: nil, Utilization: 0.5},
		{Speeds: []float64{0}, Utilization: 0.5},
		{Speeds: []float64{1}, Utilization: math.Inf(1)},
		{Speeds: []float64{1}, Utilization: -0.1},
		{Speeds: []float64{1}, Utilization: 0.5, SampleInterval: -1},
		{Speeds: []float64{1}, Utilization: 0.5,
			Overload: &OverloadConfig{QueueCap: -1}},
		{Speeds: []float64{1}, Utilization: 0.5,
			Overload: &OverloadConfig{Admission: RejectWhenFull}},
		{Speeds: []float64{1}, Utilization: 0.5,
			Overload: &OverloadConfig{Admission: TokenBucketAdmission}},
		{Speeds: []float64{1}, Utilization: 0.5, ArrivalCV: 0.5},
		{Speeds: []float64{1}, Utilization: 0.5, Duration: -1},
		{Speeds: []float64{1}, Utilization: 0.5, WarmupFraction: 1.5},
		{Speeds: []float64{1}, Utilization: 0.5, Discipline: RR},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, &fixedPolicy{}); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestLambdaMu(t *testing.T) {
	cfg := Config{Speeds: []float64{1, 3}, Utilization: 0.5}
	// Defaults: the exact Bounded Pareto mean is 76.814... (the paper
	// rounds it to 76.8); μ = 1/mean, λ = 0.5·4/mean.
	mean := dist.PaperJobSize().Mean()
	if math.Abs(mean-76.8) > 0.05 {
		t.Fatalf("paper job size mean = %v, want ~76.8", mean)
	}
	if got, want := cfg.Mu(), 1/mean; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mu = %v, want %v", got, want)
	}
	if got, want := cfg.Lambda(), 0.5*4/mean; math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Lambda = %v, want %v", got, want)
	}
}

func TestSingleServerMatchesTheory(t *testing.T) {
	// One speed-1 computer at ρ=0.5 with exponential sizes and Poisson
	// arrivals: E[T] = E[S]/(1−ρ), E[R] = 1/(1−ρ) = 2.
	cfg := Config{
		Speeds:              []float64{1},
		Utilization:         0.5,
		JobSize:             dist.NewExponential(1.0),
		ExponentialArrivals: true,
		Duration:            400000,
		Seed:                42,
	}
	res, err := Run(cfg, &fixedPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanResponseTime-2)/2 > 0.05 {
		t.Errorf("mean response time = %v, want ~2", res.MeanResponseTime)
	}
	if math.Abs(res.MeanResponseRatio-2)/2 > 0.05 {
		t.Errorf("mean response ratio = %v, want ~2", res.MeanResponseRatio)
	}
	if math.Abs(res.Utilizations[0]-0.5) > 0.02 {
		t.Errorf("utilization = %v, want ~0.5", res.Utilizations[0])
	}
	if res.JobFractions[0] != 1 {
		t.Errorf("job fraction = %v, want 1", res.JobFractions[0])
	}
}

func TestPaperDefaultWorkload(t *testing.T) {
	// With defaults (Bounded Pareto mean 76.8, H2 CV=3), a single PS
	// server's mean response ratio still matches 1/(1−ρ) only for Poisson
	// arrivals; with CV=3 it is larger. Check the Poisson case against
	// theory and the bursty case for ordering.
	// Heavy-tailed sizes make the ratio estimator converge slowly: rare
	// 21600-second jobs congest the server for hours, inflating thousands
	// of small jobs' ratios. Use a long run and a loose tolerance.
	poisson := Config{
		Speeds:              []float64{1},
		Utilization:         0.6,
		ExponentialArrivals: true,
		Duration:            2e7,
		Seed:                7,
	}
	resP, err := Run(poisson, &fixedPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (1 - 0.6)
	if math.Abs(resP.MeanResponseRatio-want)/want > 0.12 {
		t.Errorf("Poisson mean response ratio = %v, want ~%v (M/G/1-PS insensitivity)",
			resP.MeanResponseRatio, want)
	}

	bursty := poisson
	bursty.ExponentialArrivals = false
	bursty.ArrivalCV = 3.0
	resB, err := Run(bursty, &fixedPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if resB.MeanResponseRatio <= resP.MeanResponseRatio {
		t.Errorf("bursty arrivals (CV=3) ratio %v not above Poisson %v",
			resB.MeanResponseRatio, resP.MeanResponseRatio)
	}
}

func TestWarmupExcludesEarlyJobs(t *testing.T) {
	cfg := Config{
		Speeds:              []float64{1},
		Utilization:         0.5,
		JobSize:             dist.NewExponential(1.0),
		ExponentialArrivals: true,
		Duration:            10000,
		WarmupFraction:      0.25,
		Seed:                1,
	}
	res, err := Run(cfg, &fixedPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs >= res.GeneratedJobs {
		t.Errorf("observed %d jobs of %d generated; warm-up not excluded", res.Jobs, res.GeneratedJobs)
	}
	// Roughly a quarter of arrivals land in the warm-up window.
	frac := float64(res.GeneratedJobs-res.Jobs) / float64(res.GeneratedJobs)
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("warm-up fraction of jobs = %v, want ~0.25", frac)
	}
}

func TestSplitFractions(t *testing.T) {
	cfg := Config{
		Speeds:              []float64{1, 1},
		Utilization:         0.4,
		JobSize:             dist.NewExponential(1.0),
		ExponentialArrivals: true,
		Duration:            50000,
		Seed:                5,
	}
	res, err := Run(cfg, &splitPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if math.Abs(res.JobFractions[i]-0.5) > 0.01 {
			t.Errorf("fraction[%d] = %v, want ~0.5", i, res.JobFractions[i])
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	cfg := Config{
		Speeds:      []float64{1, 2},
		Utilization: 0.5,
		Duration:    20000,
		Seed:        99,
	}
	a, err := Run(cfg, &splitPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, &splitPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanResponseTime != b.MeanResponseTime || a.Jobs != b.Jobs {
		t.Error("identical seeds produced different results")
	}
	cfg.Seed = 100
	c, err := Run(cfg, &splitPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanResponseTime == c.MeanResponseTime {
		t.Error("different seeds produced identical mean response time")
	}
}

func TestDrainCompletesAllJobs(t *testing.T) {
	cfg := Config{
		Speeds:              []float64{1},
		Utilization:         0.5,
		JobSize:             dist.NewExponential(1.0),
		ExponentialArrivals: true,
		Duration:            5000,
		WarmupFraction:      -1, // no warm-up: count everything
		Seed:                3,
	}
	res, err := Run(cfg, &fixedPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != res.GeneratedJobs {
		t.Errorf("drained run observed %d of %d jobs", res.Jobs, res.GeneratedJobs)
	}
	if res.SimulatedTime < cfg.Duration {
		t.Errorf("simulated time %v below duration", res.SimulatedTime)
	}
}

func TestNoDrainDiscardsInFlight(t *testing.T) {
	noDrain := false
	cfg := Config{
		Speeds:              []float64{1},
		Utilization:         0.9,
		JobSize:             dist.NewExponential(10.0),
		ExponentialArrivals: true,
		Duration:            5000,
		WarmupFraction:      -1,
		Seed:                3,
		Drain:               &noDrain,
	}
	res, err := Run(cfg, &fixedPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs >= res.GeneratedJobs {
		t.Errorf("non-drained run at high load observed %d of %d jobs; expected in-flight jobs dropped",
			res.Jobs, res.GeneratedJobs)
	}
}

func TestDeviationTracking(t *testing.T) {
	cfg := Config{
		Speeds:              []float64{1, 1},
		Utilization:         0.4,
		JobSize:             dist.NewExponential(1.0),
		ExponentialArrivals: true,
		Duration:            1200,
		DeviationInterval:   120,
		Seed:                8,
	}
	res, err := Run(cfg, &splitPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deviations) != 10 {
		t.Fatalf("got %d deviation intervals, want 10", len(res.Deviations))
	}
	// A strict alternator has near-zero deviation in every interval.
	for i, d := range res.Deviations {
		if d > 0.001 {
			t.Errorf("interval %d deviation = %v, want ~0", i, d)
		}
	}
}

func TestDeviationRequiresFractions(t *testing.T) {
	cfg := Config{
		Speeds:            []float64{1},
		Utilization:       0.4,
		Duration:          1000,
		DeviationInterval: 100,
	}
	// leastLoadLike policy without FractionProvider.
	p := &noFractions{}
	if _, err := Run(cfg, p); err == nil {
		t.Error("deviation tracking accepted a policy without fractions")
	}
}

type noFractions struct{}

func (*noFractions) Name() string        { return "nf" }
func (*noFractions) Init(*Context) error { return nil }
func (*noFractions) Select(*sim.Job) int { return 0 }
func (*noFractions) Departed(*sim.Job)   {}

func TestRunReplications(t *testing.T) {
	cfg := Config{
		Speeds:              []float64{1, 1},
		Utilization:         0.5,
		JobSize:             dist.NewExponential(1.0),
		ExponentialArrivals: true,
		Duration:            20000,
		Seed:                1000,
	}
	rr, err := RunReplications(cfg, func() Policy { return &splitPolicy{} }, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rr.MeanResponseRatio.N != 5 {
		t.Errorf("aggregated %d reps, want 5", rr.MeanResponseRatio.N)
	}
	if rr.MeanResponseRatio.CI95 <= 0 {
		t.Error("CI95 should be positive with 5 independent runs")
	}
	if len(rr.Runs) != 5 {
		t.Errorf("stored %d runs", len(rr.Runs))
	}
	// Replication seeds must differ: run results should not be identical.
	same := true
	for _, run := range rr.Runs[1:] {
		if run.MeanResponseTime != rr.Runs[0].MeanResponseTime {
			same = false
		}
	}
	if same {
		t.Error("replications produced identical results — seeds not varied")
	}
}

func TestRunReplicationsValidation(t *testing.T) {
	if _, err := RunReplications(Config{Speeds: []float64{1}, Utilization: 0.5},
		func() Policy { return &fixedPolicy{} }, 0); err == nil {
		t.Error("0 reps accepted")
	}
}

func TestAggregateChecksShape(t *testing.T) {
	if _, err := Aggregate(nil); err == nil {
		t.Error("empty aggregate accepted")
	}
	a := &Result{JobFractions: []float64{1}, Utilizations: []float64{0.5}}
	b := &Result{JobFractions: []float64{0.5, 0.5}, Utilizations: []float64{0.5, 0.5}}
	if _, err := Aggregate([]*Result{a, b}); err == nil {
		t.Error("mismatched shapes accepted")
	}
}

func TestDisciplineString(t *testing.T) {
	if PS.String() != "PS" || RR.String() != "RR" || FCFS.String() != "FCFS" {
		t.Error("discipline names wrong")
	}
}

func TestRRDisciplineRuns(t *testing.T) {
	cfg := Config{
		Speeds:              []float64{1},
		Utilization:         0.5,
		JobSize:             dist.NewExponential(1.0),
		ExponentialArrivals: true,
		Duration:            20000,
		Discipline:          RR,
		Quantum:             0.02,
		Seed:                17,
	}
	res, err := Run(cfg, &fixedPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Small-quantum RR ≈ PS: E[R] = 1/(1−ρ) = 2.
	if math.Abs(res.MeanResponseRatio-2)/2 > 0.1 {
		t.Errorf("RR mean response ratio = %v, want ~2", res.MeanResponseRatio)
	}
}

func TestFCFSDisciplineRuns(t *testing.T) {
	cfg := Config{
		Speeds:              []float64{1},
		Utilization:         0.5,
		JobSize:             dist.NewExponential(1.0),
		ExponentialArrivals: true,
		Duration:            50000,
		Discipline:          FCFS,
		Seed:                19,
	}
	res, err := Run(cfg, &fixedPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// M/M/1 FCFS: E[T] = 1/(μ−λ) = 2 with μ=1, λ=0.5.
	if math.Abs(res.MeanResponseTime-2)/2 > 0.1 {
		t.Errorf("FCFS mean response time = %v, want ~2", res.MeanResponseTime)
	}
}

func TestRatioPercentiles(t *testing.T) {
	cfg := Config{
		Speeds:              []float64{1},
		Utilization:         0.5,
		JobSize:             dist.NewExponential(1.0),
		ExponentialArrivals: true,
		Duration:            100000,
		Seed:                12,
	}
	res, err := Run(cfg, &fixedPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Percentiles must be ordered and bracket the mean sensibly.
	if !(res.RatioP50 > 0 && res.RatioP50 <= res.RatioP95 && res.RatioP95 <= res.RatioP99) {
		t.Errorf("percentiles not ordered: p50=%v p95=%v p99=%v",
			res.RatioP50, res.RatioP95, res.RatioP99)
	}
	// For M/M/1-PS at rho=0.5 the ratio distribution has mean 2 and a
	// long right tail: median below mean, p99 well above.
	if res.RatioP50 >= res.MeanResponseRatio {
		t.Errorf("p50 %v not below mean %v (right-skewed dist expected)",
			res.RatioP50, res.MeanResponseRatio)
	}
	if res.RatioP99 < 2*res.MeanResponseRatio {
		t.Errorf("p99 %v suspiciously close to mean %v", res.RatioP99, res.MeanResponseRatio)
	}
}

func TestRunUntilPrecision(t *testing.T) {
	cfg := Config{
		Speeds:              []float64{1, 1},
		Utilization:         0.4,
		JobSize:             dist.NewExponential(1.0),
		ExponentialArrivals: true,
		Duration:            50000,
		Seed:                200,
	}
	// Loose target: should converge quickly with few reps.
	res, ok, err := RunUntilPrecision(cfg, func() Policy { return &splitPolicy{} }, 0.10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("did not reach 10%% precision in %d reps", len(res.Runs))
	}
	if len(res.Runs) < 3 {
		t.Errorf("ran %d reps, minimum is 3", len(res.Runs))
	}
	if got := res.MeanResponseRatio.CI95 / res.MeanResponseRatio.Mean; got > 0.10 {
		t.Errorf("relative CI %v above target", got)
	}
	// Impossibly tight target: must stop at maxReps and report failure.
	res2, ok2, err := RunUntilPrecision(cfg, func() Policy { return &splitPolicy{} }, 1e-9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ok2 {
		t.Error("claimed convergence at 1e-9 relative CI")
	}
	if len(res2.Runs) != 4 {
		t.Errorf("ran %d reps, want maxReps=4", len(res2.Runs))
	}
}

func TestRunUntilPrecisionValidation(t *testing.T) {
	cfg := Config{Speeds: []float64{1}, Utilization: 0.5}
	if _, _, err := RunUntilPrecision(cfg, func() Policy { return &fixedPolicy{} }, 0, 10); err == nil {
		t.Error("relCI=0 accepted")
	}
	if _, _, err := RunUntilPrecision(cfg, func() Policy { return &fixedPolicy{} }, 0.1, 2); err == nil {
		t.Error("maxReps=2 accepted")
	}
}

func TestMSERAgreesWithPaperWarmup(t *testing.T) {
	// Data-driven check of the paper's quarter-run warm-up: collect
	// per-job response ratios in completion order from a cold start and
	// let MSER-5 pick the truncation. For this system the transient is
	// short, so MSER should truncate well under a quarter of the jobs —
	// i.e. the paper's choice is (conservatively) safe.
	var ratios []float64
	cfg := Config{
		Speeds:              []float64{1, 1},
		Utilization:         0.7,
		JobSize:             dist.NewExponential(1.0),
		ExponentialArrivals: true,
		Duration:            50000,
		WarmupFraction:      -1,
		Seed:                77,
		OnDeparture:         func(j *sim.Job) { ratios = append(ratios, j.ResponseRatio()) },
	}
	if _, err := Run(cfg, &splitPolicy{}); err != nil {
		t.Fatal(err)
	}
	d, err := stats.MSERBatch(ratios, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d > len(ratios)/4 {
		t.Errorf("MSER-5 truncates %d of %d jobs — more than the paper's quarter", d, len(ratios))
	}
}

func TestResponseTimeDistributionMatchesMM1(t *testing.T) {
	// Distribution-level validation: the response time of an M/M/1 FCFS
	// queue is exponential with rate μ−λ, so the simulated quantiles must
	// match −ln(1−q)/(μ−λ). This checks the whole chain (arrivals, FCFS
	// server, clock) beyond the mean.
	var times []float64
	cfg := Config{
		Speeds:              []float64{1},
		Utilization:         0.5,
		JobSize:             dist.NewExponential(1.0),
		ExponentialArrivals: true,
		Duration:            400000,
		Discipline:          FCFS,
		Seed:                31,
		OnDeparture:         func(j *sim.Job) { times = append(times, j.ResponseTime()) },
	}
	if _, err := Run(cfg, &fixedPolicy{}); err != nil {
		t.Fatal(err)
	}
	sample := stats.NewSample(times...)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		want := queueing.MM1ResponseTimeQuantile(0.5, 1.0, q)
		got := sample.Quantile(q)
		if math.Abs(got-want)/want > 0.06 {
			t.Errorf("q%.0f: simulated %v, theory %v", 100*q, got, want)
		}
	}
	// And a KS test against the full exponential CDF.
	d, crit, ok, err := stats.KSTest(times, dist.NewExponential(2.0).CDF, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("response times failed KS vs Exp(mean 2): D=%v crit=%v", d, crit)
	}
}
