package cluster_test

import (
	"fmt"
	"math"
	"testing"

	"heterosched/internal/alloc"
	"heterosched/internal/cluster"
	"heterosched/internal/dist"
	"heterosched/internal/experiments"
	"heterosched/internal/queueing"
	"heterosched/internal/sched"
)

// Analytic-oracle suite: with Poisson arrivals, exponential job sizes and
// random dispatch, Poisson splitting makes every computer an independent
// M/M/1-PS queue, so the simulated mean response time has an exact closed
// form — the paper's equation (3):
//
//	T̄ = Σ_i α_i / (s_i μ − α_i λ).
//
// Each cell below runs fixed-seed replications of the full simulator
// (arrival process → admission → dispatch → PS service → statistics) and
// requires the analytic value to fall inside the replications' 95%
// confidence interval. This validates the event engine end-to-end against
// theory rather than against its own history: any bias introduced by the
// slab engine, the job arena, or the statistics pipeline surfaces here as
// a systematic miss of the closed form.

// oracleReps is the replication count per cell; enough for a stable
// Student-t interval while keeping the suite fast.
const oracleReps = 10

// oracleDuration balances precision against suite time. Too short a run
// leaves a finite-horizon bias (the estimator sits slightly above the
// steady-state mean) that the tight CI correctly flags, so the -short
// setting cannot be made arbitrarily small.
func oracleDuration() float64 {
	if testing.Short() {
		return 6000
	}
	return 10000
}

func TestSimulatorMatchesAnalyticOracle(t *testing.T) {
	speeds := experiments.Table1Speeds // the paper's 7-computer system

	policies := []struct {
		name      string
		factory   cluster.PolicyFactory
		allocator alloc.Allocator
	}{
		// Random dispatch only: round-robin dispatch thins the arrival
		// stream into more regular (non-Poisson) substreams, so the
		// M/M/1-PS closed form applies to ORAN/WRAN, not ORR/WRR.
		{"ORAN", func() cluster.Policy { return sched.ORAN() }, alloc.Optimized{}},
		{"WRAN", func() cluster.Policy { return sched.WRAN() }, alloc.Proportional{}},
	}
	rhos := []float64{0.5, 0.7, 0.9}

	cell := 0
	for _, pol := range policies {
		for _, rho := range rhos {
			cell++
			seed := uint64(1000 + 17*cell) // fixed, distinct per cell
			t.Run(fmt.Sprintf("%s/rho=%.1f", pol.name, rho), func(t *testing.T) {
				alpha, err := pol.allocator.Allocate(speeds, rho)
				if err != nil {
					t.Fatal(err)
				}
				sys, err := queueing.SystemFromUtilization(speeds, 1.0, rho)
				if err != nil {
					t.Fatal(err)
				}
				want, err := sys.MeanResponseTime(alpha)
				if err != nil {
					t.Fatal(err)
				}

				cfg := cluster.Config{
					Speeds:              speeds,
					Utilization:         rho,
					JobSize:             dist.NewExponential(1.0),
					ExponentialArrivals: true,
					Duration:            oracleDuration(),
					Seed:                seed,
				}
				res, err := cluster.RunReplications(cfg, pol.factory, oracleReps)
				if err != nil {
					t.Fatal(err)
				}
				got := res.MeanResponseTime

				if got.N != oracleReps || !(got.CI95 > 0) {
					t.Fatalf("degenerate summary: %+v", got)
				}
				// A sloppy interval would make the containment check
				// vacuous; require reasonable precision first.
				if got.CI95 > 0.25*want {
					t.Fatalf("CI95 %.4g too wide relative to analytic %.4g — not enough jobs for a meaningful check",
						got.CI95, want)
				}
				if diff := math.Abs(got.Mean - want); diff > got.CI95 {
					t.Errorf("simulated T̄ = %.5g ± %.2g (95%% CI, %d reps) excludes analytic %.5g (miss by %.2g)",
						got.Mean, got.CI95, got.N, want, diff)
				}
			})
		}
	}
}
