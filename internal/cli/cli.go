// Package cli holds the input parsing and validation shared by the
// command-line front ends (cmd/heterosim, cmd/sweep): speed lists, run
// parameters, the policy-mnemonic parser, and the failure-model flags.
// Everything is validated up front with actionable messages, so bad
// flags never reach the panicking constructors deeper in the stack.
package cli

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"heterosched/internal/cluster"
	"heterosched/internal/dispatch"
	"heterosched/internal/dist"
	"heterosched/internal/faults"
	"heterosched/internal/sched"
)

// ParseSpeeds parses a comma-separated speed list and validates every
// entry (positive, finite).
func ParseSpeeds(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	speeds := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad speed %q: %v", p, err)
		}
		if !(v > 0) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("speed %q must be positive and finite", p)
		}
		speeds = append(speeds, v)
	}
	if len(speeds) == 0 {
		return nil, fmt.Errorf("no speeds given (want e.g. -speeds 1,1,2,10)")
	}
	return speeds, nil
}

// MaxRho bounds the utilization the front ends accept. Overload studies
// need ρ ≥ 1; the cap only rejects typos (an offered load of 10× the
// system capacity is already far beyond anything the overload mechanisms
// are designed to illuminate).
const MaxRho = 10

// RunParams are the common run parameters every front end validates.
type RunParams struct {
	Rho      float64 // utilization, in [0, MaxRho]; >= 1 is overload
	Duration float64 // simulated seconds, > 0
	Reps     int     // replications, >= 1
	CV       float64 // arrival CV, >= 1
	Quantum  float64 // RR slice, >= 0 (0 = PS)
	MeanSize float64 // mean job size, > 0
}

// Validate checks every parameter and returns the first problem with a
// message naming the flag.
func (p RunParams) Validate() error {
	if math.IsNaN(p.Rho) || p.Rho < 0 || p.Rho > MaxRho {
		return fmt.Errorf("-rho %v: utilization must be in [0, %v] (values >= 1 simulate overload)", p.Rho, float64(MaxRho))
	}
	if !(p.Duration > 0) || math.IsInf(p.Duration, 0) {
		return fmt.Errorf("-duration %v: must be positive and finite", p.Duration)
	}
	if p.Reps < 1 {
		return fmt.Errorf("-reps %d: need at least one replication", p.Reps)
	}
	if math.IsNaN(p.CV) || p.CV < 1 {
		return fmt.Errorf("-cv %v: arrival CV below 1 is not representable by the H2 process", p.CV)
	}
	if p.Quantum < 0 || math.IsNaN(p.Quantum) || math.IsInf(p.Quantum, 0) {
		return fmt.Errorf("-quantum %v: must be >= 0 (0 selects processor sharing)", p.Quantum)
	}
	if !(p.MeanSize > 0) || math.IsInf(p.MeanSize, 0) {
		return fmt.Errorf("-meansize %v: must be positive and finite", p.MeanSize)
	}
	return nil
}

// ValidateSweepRange checks a -from/-to/-step utilization sweep.
func ValidateSweepRange(from, to, step float64) error {
	if math.IsNaN(from) || from < 0 || from > MaxRho {
		return fmt.Errorf("-from %v: utilization must be in [0, %v]", from, float64(MaxRho))
	}
	if math.IsNaN(to) || to < 0 || to > MaxRho {
		return fmt.Errorf("-to %v: utilization must be in [0, %v]", to, float64(MaxRho))
	}
	if to < from {
		return fmt.Errorf("-to %v below -from %v", to, from)
	}
	if !(step > 0) {
		return fmt.Errorf("-step %v: must be positive", step)
	}
	return nil
}

// FaultParams are the failure-model flags shared by the front ends.
type FaultParams struct {
	MTBF    float64 // mean time between failures; 0 disables injection
	MTTR    float64 // mean time to repair
	Fate    string  // lost | restart | resume | requeue
	Retries int     // requeue budget
	Detect  float64 // detection lag in seconds
	Realloc string  // stale | resolve
}

// Build validates the fault flags and assembles the faults.Config
// (exponential uptime and downtime with the given means) plus the
// reallocation mode. A zero MTBF returns a nil config: no injection.
func (p FaultParams) Build() (*faults.Config, sched.ReallocMode, error) {
	mode, err := sched.ParseReallocMode(p.Realloc)
	if err != nil {
		return nil, 0, fmt.Errorf("-realloc: %v", err)
	}
	if p.MTBF == 0 {
		return nil, mode, nil
	}
	if !(p.MTBF > 0) || math.IsInf(p.MTBF, 0) {
		return nil, 0, fmt.Errorf("-mtbf %v: must be positive and finite (0 disables failures)", p.MTBF)
	}
	if !(p.MTTR > 0) || math.IsInf(p.MTTR, 0) {
		return nil, 0, fmt.Errorf("-mttr %v: must be positive and finite when -mtbf is set", p.MTTR)
	}
	fate, err := faults.ParseFate(p.Fate)
	if err != nil {
		return nil, 0, fmt.Errorf("-fate: %v", err)
	}
	if p.Retries < 0 {
		return nil, 0, fmt.Errorf("-retries %d: must be >= 0", p.Retries)
	}
	if p.Detect < 0 || math.IsNaN(p.Detect) || math.IsInf(p.Detect, 0) {
		return nil, 0, fmt.Errorf("-detect %v: must be >= 0 and finite", p.Detect)
	}
	return &faults.Config{
		Uptime:       dist.NewExponential(p.MTBF),
		Downtime:     dist.NewExponential(p.MTTR),
		Fate:         fate,
		MaxRetries:   p.Retries,
		DetectionLag: p.Detect,
	}, mode, nil
}

// PolicyOptions parameterize the policy parser.
type PolicyOptions struct {
	// Realloc is applied to every static policy (reaction to failures).
	Realloc sched.ReallocMode
	// Faults supplies the planned availability for the ORRA mnemonic;
	// nil or disabled makes ORRA an error.
	Faults *faults.Config
	// Computers is the cluster size (needed to expand ORRA's
	// availability vector).
	Computers int
	// Sharding configures multi-dispatcher simulation (K replicas).
	// Static and scalable policies shard; the centralized dynamic
	// policies (LL, LL*, JSQ2) reject K > 1.
	Sharding ShardingParams
}

// ParsePolicy parses one policy mnemonic into a factory. Recognized:
// WRAN, ORAN, WRR, ORR (the paper's Table 2 grid), LL, LL* (instant
// updates), JSQ2, ORRA (availability-aware ORR; requires -mtbf),
// ORRCAPx (utilization cap x), ORR±e (load estimation error e%), and
// the scalable-dispatch family jsq(d), pod(d)[:speed|alpha], jiq
// (case-insensitive).
func ParsePolicy(name string, opts PolicyOptions) (cluster.PolicyFactory, error) {
	static := func(mk func() *sched.Static) cluster.PolicyFactory {
		return func() cluster.Policy {
			p := mk()
			p.Realloc = opts.Realloc
			if opts.Sharding.Enabled() {
				p.Dispatchers = opts.Sharding.Dispatchers
				p.ShardBy = opts.Sharding.ShardBy
				p.SyncEvery = opts.Sharding.SyncEvery
			}
			return p
		}
	}
	scalable := func(mk func() *sched.Scalable) cluster.PolicyFactory {
		return func() cluster.Policy {
			p := mk()
			if opts.Sharding.Enabled() {
				p.Dispatchers = opts.Sharding.Dispatchers
				p.ShardBy = opts.Sharding.ShardBy
			}
			return p
		}
	}
	central := func(mnemonic string, mk func() cluster.Policy) (cluster.PolicyFactory, error) {
		if opts.Sharding.Enabled() {
			return nil, fmt.Errorf("policy %s is a centralized dynamic scheduler and cannot shard (-dispatchers %d)", mnemonic, opts.Sharding.Dispatchers)
		}
		return mk, nil
	}
	if f, ok, err := parseScalablePolicy(name, opts, scalable); ok || err != nil {
		return f, err
	}
	upper := strings.ToUpper(strings.TrimSpace(name))
	switch upper {
	case "WRAN":
		return static(sched.WRAN), nil
	case "ORAN":
		return static(sched.ORAN), nil
	case "WRR":
		return static(sched.WRR), nil
	case "ORR":
		return static(sched.ORR), nil
	case "LL":
		return central("LL", func() cluster.Policy { return sched.NewLeastLoad() })
	case "LL*":
		return central("LL*", func() cluster.Policy { return &sched.LeastLoad{Instant: true} })
	case "JSQ2":
		return central("JSQ2", func() cluster.Policy { return sched.NewPowerOfTwo() })
	case "ORRA":
		if !opts.Faults.Enabled() {
			return nil, fmt.Errorf("policy ORRA needs a failure model (set -mtbf and -mttr)")
		}
		av, err := opts.Faults.PlannedAvailability(opts.Computers)
		if err != nil {
			return nil, fmt.Errorf("policy ORRA: %v", err)
		}
		return static(func() *sched.Static { return sched.ORRAvailability(av) }), nil
	}
	if strings.HasPrefix(upper, "ORRCAP") {
		v, err := strconv.ParseFloat(upper[6:], 64)
		if err != nil || !(v > 0) || v > 1 {
			return nil, fmt.Errorf("policy %q: ORRCAPx needs a cap x in (0, 1], e.g. ORRCAP0.9", name)
		}
		return static(func() *sched.Static { return sched.ORRCapped(v) }), nil
	}
	if strings.HasPrefix(upper, "ORR") {
		pct, err := strconv.ParseFloat(upper[3:], 64)
		if err != nil {
			return nil, fmt.Errorf("unknown policy %q", name)
		}
		rel := pct / 100
		if rel <= -1 || rel >= 1 {
			return nil, fmt.Errorf("policy %q: estimation error must be within ±100%%", name)
		}
		return static(func() *sched.Static { return sched.ORRWithLoadErrorUnstable(rel) }), nil
	}
	return nil, fmt.Errorf("unknown policy %q (want WRAN, ORAN, WRR, ORR, LL, LL*, JSQ2, ORRA, ORRCAPx, ORR±e, jsq(d), pod(d)[:speed|alpha] or jiq)", name)
}

// parseScalablePolicy recognizes the scalable-dispatch mnemonics:
// jsq(d), pod(d), pod(d):speed, pod(d):alpha and jiq, case-insensitive.
// ok reports whether the name belongs to this family at all; a
// malformed member (e.g. "jsq(0)") is ok with a non-nil error.
func parseScalablePolicy(name string, opts PolicyOptions, wrap func(mk func() *sched.Scalable) cluster.PolicyFactory) (cluster.PolicyFactory, bool, error) {
	lower := strings.ToLower(strings.TrimSpace(name))
	if lower == "jiq" {
		return wrap(sched.JIQ), true, nil
	}
	sampled := func(prefix string) (int, string, bool, error) {
		if !strings.HasPrefix(lower, prefix+"(") {
			return 0, "", false, nil
		}
		rest := lower[len(prefix)+1:]
		dPart, variant, _ := strings.Cut(rest, ")")
		variant = strings.TrimPrefix(variant, ":")
		d, err := strconv.Atoi(dPart)
		if err != nil || !strings.Contains(rest, ")") {
			return 0, "", true, fmt.Errorf("policy %q: want %s(d) with an integer sample width d, e.g. %s(2)", name, prefix, prefix)
		}
		if d < 1 || d > dispatch.MaxSampleWidth {
			return 0, "", true, fmt.Errorf("policy %q: sample width must be in [1, %d]", name, dispatch.MaxSampleWidth)
		}
		// Sampling more computers than exist would silently clamp to JSQ
		// over the whole fleet — reject the typo instead of masking it.
		if opts.Computers > 0 && d > opts.Computers {
			return 0, "", true, fmt.Errorf("policy %q: sample width %d exceeds the fleet size %d", name, d, opts.Computers)
		}
		return d, variant, true, nil
	}
	if d, variant, ok, err := sampled("jsq"); ok {
		if err != nil {
			return nil, true, err
		}
		if variant != "" {
			return nil, true, fmt.Errorf("policy %q: jsq(d) takes no variant suffix", name)
		}
		return wrap(func() *sched.Scalable { return sched.JSQd(d) }), true, nil
	}
	if d, variant, ok, err := sampled("pod"); ok {
		if err != nil {
			return nil, true, err
		}
		switch variant {
		case "", "speed":
			return wrap(func() *sched.Scalable { return sched.PodSpeed(d) }), true, nil
		case "alpha":
			return wrap(func() *sched.Scalable { return sched.PodAlpha(d) }), true, nil
		default:
			return nil, true, fmt.Errorf("policy %q: pod(d) variant must be speed or alpha", name)
		}
	}
	return nil, false, nil
}

// ParsePolicies parses a comma-separated policy list.
func ParsePolicies(list string, opts PolicyOptions) ([]string, []cluster.PolicyFactory, error) {
	var names []string
	var factories []cluster.PolicyFactory
	for _, n := range strings.Split(list, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		f, err := ParsePolicy(n, opts)
		if err != nil {
			return nil, nil, err
		}
		names = append(names, n)
		factories = append(factories, f)
	}
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("no policies given")
	}
	return names, factories, nil
}
