package cli

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"heterosched/internal/cluster"
	"heterosched/internal/drift"
)

// This file parses the parameter-drift and adaptive re-planning flags
// shared by the front ends: -drift, -estimator and -replan. Every spec
// parser returns a clean error on malformed input (they are fuzzed in
// fuzz_test.go); nothing here panics.

// DriftParams are the raw drift/adaptation flag values.
type DriftParams struct {
	// Drift is a comma-separated perturbation list:
	// lstep:T:F | lramp:T0:T1:F | lcycle:P:A | sstep:T:F[:IDX] |
	// mis:RHOERR[:SPEEDERR]. Empty disables drift.
	Drift string
	// Replan is "CHECK:TRIP:COOLDOWN[:BAND[:MINN]]"; empty disables the
	// adaptive loop.
	Replan string
	// Estimator is "win:N" or "ewma:ALPHA"; empty means the default
	// (win:256). Only meaningful with Replan.
	Estimator string
}

// Build validates the drift flags against the cluster size and
// assembles the configurations. All-empty parameters return (nil, nil):
// no drift, no adaptation, bit-identical runs.
func (p DriftParams) Build(computers int) (*drift.Config, *cluster.AdaptConfig, error) {
	dc, err := ParseDriftSpec(p.Drift)
	if err != nil {
		return nil, nil, fmt.Errorf("-drift: %v", err)
	}
	if dc != nil {
		if err := dc.Validate(computers); err != nil {
			return nil, nil, fmt.Errorf("-drift: %v", err)
		}
	}
	ac, err := ParseReplanSpec(p.Replan)
	if err != nil {
		return nil, nil, fmt.Errorf("-replan: %v", err)
	}
	est, hasEst, err := ParseEstimatorSpec(p.Estimator)
	if err != nil {
		return nil, nil, fmt.Errorf("-estimator: %v", err)
	}
	if hasEst {
		if ac == nil {
			return nil, nil, fmt.Errorf("-estimator: requires -replan (the estimators feed the re-planning watchdog)")
		}
		ac.Estimator = est
	}
	if ac != nil {
		if err := ac.Validate(); err != nil {
			return nil, nil, err
		}
	}
	return dc, ac, nil
}

// ParseDriftSpec parses a comma-separated drift perturbation list. At
// most one arrival-rate schedule (lstep/lramp/lcycle) and one
// misestimation item are allowed; speed steps may repeat. Empty input
// returns nil (no drift).
func ParseDriftSpec(s string) (*drift.Config, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	cfg := &drift.Config{}
	haveMis := false
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		kind, rest, _ := strings.Cut(item, ":")
		kind = strings.TrimSpace(kind)
		parts := []string{}
		if rest != "" {
			parts = strings.Split(rest, ":")
		}
		num := func(i int, what string) (float64, error) {
			v, err := strconv.ParseFloat(strings.TrimSpace(parts[i]), 64)
			if err != nil {
				return 0, fmt.Errorf("bad %s %q: %v", what, parts[i], err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("%s %v must be finite", what, v)
			}
			return v, nil
		}
		switch kind {
		case "lstep", "lramp", "lcycle":
			if cfg.Arrival != nil {
				return nil, fmt.Errorf("duplicate arrival-rate schedule %q (at most one of lstep/lramp/lcycle)", item)
			}
			switch kind {
			case "lstep":
				if len(parts) != 2 {
					return nil, fmt.Errorf("bad spec %q (want lstep:T:FACTOR)", item)
				}
				at, err := num(0, "step time")
				if err != nil {
					return nil, err
				}
				f, err := num(1, "step factor")
				if err != nil {
					return nil, err
				}
				cfg.Arrival = drift.Step{At: at, Factor: f}
			case "lramp":
				if len(parts) != 3 {
					return nil, fmt.Errorf("bad spec %q (want lramp:FROM:TO:FACTOR)", item)
				}
				from, err := num(0, "ramp start")
				if err != nil {
					return nil, err
				}
				to, err := num(1, "ramp end")
				if err != nil {
					return nil, err
				}
				f, err := num(2, "ramp factor")
				if err != nil {
					return nil, err
				}
				cfg.Arrival = drift.Ramp{From: from, To: to, Factor: f}
			default:
				if len(parts) != 2 {
					return nil, fmt.Errorf("bad spec %q (want lcycle:PERIOD:AMPLITUDE)", item)
				}
				period, err := num(0, "cycle period")
				if err != nil {
					return nil, err
				}
				amp, err := num(1, "cycle amplitude")
				if err != nil {
					return nil, err
				}
				cfg.Arrival = drift.Cycle{Period: period, Amplitude: amp}
			}
			// Validate the schedule here, not only in Config.Validate:
			// the parser must reject a bad spec on its own (negative
			// times, non-positive factors) so every caller gets the same
			// verdict regardless of whether it runs deep validation.
			if err := cfg.Arrival.Validate(); err != nil {
				return nil, err
			}
		case "sstep":
			if len(parts) != 2 && len(parts) != 3 {
				return nil, fmt.Errorf("bad spec %q (want sstep:T:FACTOR[:COMPUTER])", item)
			}
			at, err := num(0, "speed-step time")
			if err != nil {
				return nil, err
			}
			f, err := num(1, "speed-step factor")
			if err != nil {
				return nil, err
			}
			idx := -1
			if len(parts) == 3 {
				if idx, err = strconv.Atoi(strings.TrimSpace(parts[2])); err != nil {
					return nil, fmt.Errorf("bad speed-step computer %q: %v", parts[2], err)
				}
				if idx < 0 {
					return nil, fmt.Errorf("speed-step computer %d must be >= 0 (omit for all computers)", idx)
				}
			}
			cfg.SpeedSteps = append(cfg.SpeedSteps, drift.SpeedStep{At: at, Computer: idx, Factor: f})
		case "mis":
			if haveMis {
				return nil, fmt.Errorf("duplicate misestimation spec %q", item)
			}
			if len(parts) != 1 && len(parts) != 2 {
				return nil, fmt.Errorf("bad spec %q (want mis:RHOERR[:SPEEDERR])", item)
			}
			rhoErr, err := num(0, "rho error")
			if err != nil {
				return nil, err
			}
			speedErr := 0.0
			if len(parts) == 2 {
				if speedErr, err = num(1, "speed error"); err != nil {
					return nil, err
				}
			}
			cfg.Misest = drift.Misest{RhoErr: rhoErr, SpeedErr: speedErr}
			haveMis = true
		default:
			return nil, fmt.Errorf("unknown drift spec %q (want lstep:T:F, lramp:T0:T1:F, lcycle:P:A, sstep:T:F[:IDX] or mis:RHOERR[:SPEEDERR])", item)
		}
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	return cfg, nil
}

// ParseEstimatorSpec parses "win:N" or "ewma:ALPHA". Empty returns the
// default configuration with hasSpec false.
func ParseEstimatorSpec(s string) (cfg cluster.EstimatorConfig, hasSpec bool, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return cluster.EstimatorConfig{}, false, nil
	}
	kind, rest, ok := strings.Cut(s, ":")
	kind = strings.TrimSpace(kind)
	if !ok {
		return cfg, false, fmt.Errorf("bad estimator spec %q (want win:N or ewma:ALPHA)", s)
	}
	switch kind {
	case "win":
		n, err := strconv.Atoi(strings.TrimSpace(rest))
		if err != nil {
			return cfg, false, fmt.Errorf("bad window size %q: %v", rest, err)
		}
		if n < 2 {
			return cfg, false, fmt.Errorf("window size %d must be >= 2", n)
		}
		return cluster.EstimatorConfig{Kind: cluster.EstimatorWindow, Window: n}, true, nil
	case "ewma":
		a, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return cfg, false, fmt.Errorf("bad EWMA alpha %q: %v", rest, err)
		}
		if !(a > 0 && a <= 1) {
			return cfg, false, fmt.Errorf("EWMA alpha %v outside (0, 1]", a)
		}
		return cluster.EstimatorConfig{Kind: cluster.EstimatorEWMA, Alpha: a}, true, nil
	}
	return cfg, false, fmt.Errorf("unknown estimator kind %q (want win or ewma)", kind)
}

// ParseReplanSpec parses "CHECK:TRIP:COOLDOWN[:BAND[:MINN]]": watchdog
// period, per-computer utilization trip threshold, cooldown between
// plan changes, optional hysteresis band and minimum estimator sample
// count. Empty returns nil (no adaptive loop).
func ParseReplanSpec(s string) (*cluster.AdaptConfig, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) < 3 || len(parts) > 5 {
		return nil, fmt.Errorf("bad replan spec %q (want CHECK:TRIP:COOLDOWN[:BAND[:MINN]])", s)
	}
	num := func(i int, what string) (float64, error) {
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[i]), 64)
		if err != nil {
			return 0, fmt.Errorf("bad %s %q: %v", what, parts[i], err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("%s %v must be finite", what, v)
		}
		return v, nil
	}
	check, err := num(0, "check interval")
	if err != nil {
		return nil, err
	}
	if !(check > 0) {
		return nil, fmt.Errorf("check interval %v must be positive", check)
	}
	trip, err := num(1, "trip threshold")
	if err != nil {
		return nil, err
	}
	cooldown, err := num(2, "cooldown")
	if err != nil {
		return nil, err
	}
	cfg := &cluster.AdaptConfig{CheckInterval: check, RhoTrip: trip, Cooldown: cooldown}
	if len(parts) >= 4 {
		if cfg.Band, err = num(3, "hysteresis band"); err != nil {
			return nil, err
		}
	}
	if len(parts) == 5 {
		minn, err := strconv.ParseInt(strings.TrimSpace(parts[4]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad min samples %q: %v", parts[4], err)
		}
		cfg.MinSamples = minn
	}
	return cfg, nil
}
