package cli

import (
	"strings"
	"testing"

	"heterosched/internal/dist"
	"heterosched/internal/netfault"
)

func TestParseNetfaultSpecEmpty(t *testing.T) {
	for _, s := range []string{"", "  ", ",,", " , "} {
		cfg, err := ParseNetfaultSpec(s)
		if err != nil || cfg != nil {
			t.Errorf("ParseNetfaultSpec(%q) = %+v, %v; want nil, nil", s, cfg, err)
		}
	}
}

func TestParseNetfaultSpecLinks(t *testing.T) {
	cfg, err := ParseNetfaultSpec("loss:0.05,dup:0.02,lat:3,loss:0.2:3,lat:0:3")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Link.Loss != 0.05 || cfg.Link.Dup != 0.02 {
		t.Errorf("default link = %+v", cfg.Link)
	}
	if d, ok := cfg.Link.Latency.(dist.Exponential); !ok || d.MeanVal != 3 {
		t.Errorf("default latency = %#v, want exponential mean 3", cfg.Link.Latency)
	}
	// The per-link override inherits unset fields from the default model
	// and overrides the rest — here loss jumps to 0.2 and latency is
	// cleared, but dup stays at the default 0.02.
	l3 := cfg.LinkFor(3)
	if l3.Loss != 0.2 || l3.Dup != 0.02 || l3.Latency != nil {
		t.Errorf("link 3 = %+v, want loss 0.2, dup 0.02, no latency", l3)
	}
	if l := cfg.LinkFor(1); l.Loss != 0.05 {
		t.Errorf("link 1 = %+v, want the default model", l)
	}
}

func TestParseNetfaultSpecCrashDownPart(t *testing.T) {
	cfg, err := ParseNetfaultSpec("down:buffer:64,crash:15000:100,part:1000:2000:0+2,part:5000:6000")
	if err != nil {
		t.Fatal(err)
	}
	d := cfg.Dispatcher
	if d == nil {
		t.Fatal("no dispatcher")
	}
	if d.Down != netfault.DownBuffer || d.BufferCap != 64 {
		t.Errorf("down policy = %v cap %d", d.Down, d.BufferCap)
	}
	if up, ok := d.Uptime.(dist.Exponential); !ok || up.MeanVal != 15000 {
		t.Errorf("uptime = %#v", d.Uptime)
	}
	if len(cfg.Partitions) != 2 {
		t.Fatalf("partitions = %+v", cfg.Partitions)
	}
	p := cfg.Partitions[0]
	if p.From != 1000 || p.To != 2000 || len(p.Links) != 2 || p.Links[0] != 0 || p.Links[1] != 2 {
		t.Errorf("partition 0 = %+v", p)
	}
	if len(cfg.Partitions[1].Links) != 0 {
		t.Errorf("partition 1 = %+v, want a full partition", cfg.Partitions[1])
	}
}

func TestParseNetfaultSpecRejects(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"bogus:1", "unknown netfault spec"},
		{"loss:", "want loss:VALUE"},
		{"loss:x", "bad loss value"},
		{"loss:0.1:x", "bad link index"},
		{"loss:0.1:-1", "link index -1"},
		{"loss:0.1,loss:0.2", "duplicate default loss"},
		{"dup:0.1:2,dup:0.2:2", "duplicate dup item for link 2"},
		{"lat:-5", "latency mean -5 is negative"},
		{"crash:1000", "want crash:MTBF:MTTR"},
		{"crash:0:100", "must be positive"},
		{"crash:1000:100,crash:1000:100", "duplicate crash item"},
		{"crash:1000:100,down:drop,down:drop", "duplicate down item"},
		{"crash:1000:100,down:park", "unknown down policy"},
		{"crash:1000:100,down:drop:5", "takes no capacity"},
		{"crash:1000:100,down:buffer:0", "at least 1"},
		{"down:buffer:64", "requires a crash"},
		{"part:1000", "want part:FROM:TO"},
		{"part:1000:2000:0++1", "empty link in list"},
		{"part:1000:2000:0+x", "bad partition link"},
	}
	for _, tc := range cases {
		cfg, err := ParseNetfaultSpec(tc.spec)
		if err == nil {
			t.Errorf("ParseNetfaultSpec(%q) accepted: %+v", tc.spec, cfg)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseNetfaultSpec(%q) error %q does not mention %q", tc.spec, err, tc.want)
		}
	}
}

func TestParseAckSpec(t *testing.T) {
	if _, has, err := ParseAckSpec(""); has || err != nil {
		t.Errorf("empty ack spec = hasSpec %v, %v", has, err)
	}
	ack, has, err := ParseAckSpec("30")
	if err != nil || !has || ack.Timeout != 30 || ack.Budget != 0 {
		t.Errorf("ParseAckSpec(30) = %+v, %v, %v", ack, has, err)
	}
	ack, _, err = ParseAckSpec("30:6:2:40:0.25")
	if err != nil {
		t.Fatal(err)
	}
	want := netfault.Ack{Timeout: 30, Budget: 6, BackoffBase: 2, BackoffMax: 40, Jitter: 0.25}
	if ack != want {
		t.Errorf("ack = %+v, want %+v", ack, want)
	}
	for _, bad := range []string{"0", "-5", "x", "30:x", "30:4:5", "30:4:x:60", "30:4:5:60:x", "30:4:5:60:0.5:9"} {
		if _, _, err := ParseAckSpec(bad); err == nil {
			t.Errorf("ParseAckSpec(%q) accepted", bad)
		}
	}
}

func TestParseDStateSpec(t *testing.T) {
	if ds, err := ParseDStateSpec(""); ds != nil || err != nil {
		t.Errorf("empty dstate spec = %+v, %v", ds, err)
	}
	cases := map[string]DStateSpec{
		"acks":          {Recovery: netfault.RecoverAcks},
		"ckpt:2500":     {Recovery: netfault.RecoverCheckpoint, CheckpointDT: 2500},
		"ckpt:2500:500": {Recovery: netfault.RecoverCheckpoint, CheckpointDT: 2500, ClientTO: 500},
		"cold":          {Recovery: netfault.RecoverCold},
		"cold:4000":     {Recovery: netfault.RecoverCold, RelearnT: 4000},
		"cold:4000:600": {Recovery: netfault.RecoverCold, RelearnT: 4000, ClientTO: 600},
	}
	for s, want := range cases {
		ds, err := ParseDStateSpec(s)
		if err != nil {
			t.Errorf("ParseDStateSpec(%q): %v", s, err)
			continue
		}
		if *ds != want {
			t.Errorf("ParseDStateSpec(%q) = %+v, want %+v", s, *ds, want)
		}
	}
	for _, bad := range []string{"warm", "acks:1", "ckpt", "ckpt:", "ckpt:0", "ckpt:-1", "cold:0", "cold:1:2:3"} {
		if ds, err := ParseDStateSpec(bad); err == nil {
			t.Errorf("ParseDStateSpec(%q) accepted: %+v", bad, ds)
		}
	}
}

func TestNetfaultParamsBuild(t *testing.T) {
	if cfg, err := (NetfaultParams{}).Build(4); cfg != nil || err != nil {
		t.Errorf("empty params = %+v, %v", cfg, err)
	}
	cfg, err := NetfaultParams{
		Netfault: "loss:0.05,lat:2,crash:15000:100,down:buffer",
		AckTO:    "30",
		DState:   "ckpt:2000",
	}.Build(4)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Dispatcher.Recovery != netfault.RecoverCheckpoint || cfg.Dispatcher.CheckpointDT != 2000 {
		t.Errorf("dispatcher = %+v", cfg.Dispatcher)
	}
	if cfg.Dispatcher.BufferCap != netfault.DefaultBufferCap {
		t.Errorf("buffer cap %d, want the default applied by Validate", cfg.Dispatcher.BufferCap)
	}
	if cfg.Ack.Timeout != 30 || cfg.Ack.Budget != netfault.DefaultAckBudget {
		t.Errorf("ack = %+v", cfg.Ack)
	}

	// Lossy links without -ackto must be rejected with a pointer at the
	// missing flag.
	if _, err := (NetfaultParams{Netfault: "loss:0.1"}).Build(4); err == nil ||
		!strings.Contains(err.Error(), "-ackto") {
		t.Errorf("lossy without ack = %v", err)
	}
	// -dstate without a crash item has nothing to recover.
	if _, err := (NetfaultParams{DState: "cold"}).Build(4); err == nil ||
		!strings.Contains(err.Error(), "crash") {
		t.Errorf("dstate without crash = %v", err)
	}
	// An ack loop alone is valid: reliability tracking on a perfect
	// network.
	cfg, err = NetfaultParams{AckTO: "30"}.Build(4)
	if err != nil || !cfg.Enabled() {
		t.Errorf("ack-only params = %+v, %v", cfg, err)
	}
}
