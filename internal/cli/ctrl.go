package cli

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"heterosched/internal/ctrlplane"
	"heterosched/internal/dist"
	"heterosched/internal/netfault"
)

// This file parses the -ctrl flag shared by the front ends: the physical
// control-plane spec carrying idle tokens, state queries and counter-sync
// frames. Like the netfault parsers, it returns clean errors on malformed
// input (fuzzed in fuzz_test.go); nothing here panics.

// CtrlParams is the raw control-plane flag value.
type CtrlParams struct {
	// Ctrl is a comma-separated control-plane item list:
	// loss:P[:LINK] | dup:P[:LINK] | lat:MEAN[:LINK] | lease:T | qto:T |
	// part:FROM:TO[:L1+L2+...] | dpart:FROM:TO[:K1+K2+...].
	// Empty disables the layer (oracle state, bit-identical runs).
	Ctrl string
}

// Build parses and validates the control-plane spec against the cluster
// size and the dispatcher replica count. Empty input returns nil: no
// control plane, policies keep their oracle state views.
func (p CtrlParams) Build(computers, dispatchers int) (*ctrlplane.Config, error) {
	cfg, err := ParseCtrlSpec(p.Ctrl)
	if err != nil {
		return nil, fmt.Errorf("-ctrl: %v", err)
	}
	if cfg == nil {
		return nil, nil
	}
	if err := cfg.Validate(computers, dispatchers); err != nil {
		return nil, fmt.Errorf("-ctrl: %v", err)
	}
	return cfg, nil
}

// ParseCtrlSpec parses a comma-separated control-plane item list: link
// models (loss/dup/lat, with an optional per-computer link index), the
// idle-token lease (lease:T), the query timeout (qto:T), dispatcher↔
// computer partition windows (part:...) and replica↔replica sync
// partition windows (dpart:...). Empty input returns nil (no control
// plane).
func ParseCtrlSpec(s string) (*ctrlplane.Config, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	cfg := &ctrlplane.Config{}
	patches := map[int]*linkPatch{}
	patchFor := func(idx int) *linkPatch {
		p := patches[idx]
		if p == nil {
			p = &linkPatch{}
			patches[idx] = p
		}
		return p
	}
	haveDefault := map[string]bool{}
	haveLease, haveQTO := false, false
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		kind, rest, _ := strings.Cut(item, ":")
		kind = strings.TrimSpace(kind)
		parts := []string{}
		if rest != "" {
			parts = strings.Split(rest, ":")
		}
		num := func(i int, what string) (float64, error) {
			v, err := strconv.ParseFloat(strings.TrimSpace(parts[i]), 64)
			if err != nil {
				return 0, fmt.Errorf("bad %s %q: %v", what, parts[i], err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("%s %v must be finite", what, v)
			}
			return v, nil
		}
		switch kind {
		case "loss", "dup", "lat":
			if len(parts) != 1 && len(parts) != 2 {
				return nil, fmt.Errorf("bad spec %q (want %s:VALUE[:LINK])", item, kind)
			}
			v, err := num(0, kind+" value")
			if err != nil {
				return nil, err
			}
			if kind == "lat" && v < 0 {
				return nil, fmt.Errorf("latency mean %g is negative", v)
			}
			if kind != "lat" && (v < 0 || v > 1) {
				return nil, fmt.Errorf("%s probability %g outside [0, 1]", kind, v)
			}
			if len(parts) == 2 {
				idx, err := strconv.Atoi(strings.TrimSpace(parts[1]))
				if err != nil {
					return nil, fmt.Errorf("bad link index %q: %v", parts[1], err)
				}
				if idx < 0 {
					return nil, fmt.Errorf("link index %d must be >= 0 (omit for all links)", idx)
				}
				p := patchFor(idx)
				var field **float64
				switch kind {
				case "loss":
					field = &p.loss
				case "dup":
					field = &p.dup
				default:
					field = &p.lat
				}
				if *field != nil {
					return nil, fmt.Errorf("duplicate %s item for link %d", kind, idx)
				}
				vv := v
				*field = &vv
				break
			}
			if haveDefault[kind] {
				return nil, fmt.Errorf("duplicate default %s item %q", kind, item)
			}
			haveDefault[kind] = true
			switch kind {
			case "loss":
				cfg.Link.Loss = v
			case "dup":
				cfg.Link.Dup = v
			default:
				if v > 0 {
					cfg.Link.Latency = dist.Exponential{MeanVal: v}
				}
			}
		case "lease", "qto":
			have := &haveLease
			field := &cfg.Lease
			what := "token lease"
			if kind == "qto" {
				have, field, what = &haveQTO, &cfg.QueryTO, "query timeout"
			}
			if *have {
				return nil, fmt.Errorf("duplicate %s item %q", kind, item)
			}
			*have = true
			if len(parts) != 1 {
				return nil, fmt.Errorf("bad spec %q (want %s:T)", item, kind)
			}
			v, err := num(0, what)
			if err != nil {
				return nil, err
			}
			if v <= 0 {
				return nil, fmt.Errorf("%s %g must be positive", what, v)
			}
			*field = v
		case "part", "dpart":
			if len(parts) != 2 && len(parts) != 3 {
				return nil, fmt.Errorf("bad spec %q (want %s:FROM:TO[:L1+L2+...])", item, kind)
			}
			from, err := num(0, "partition start")
			if err != nil {
				return nil, err
			}
			to, err := num(1, "partition end")
			if err != nil {
				return nil, err
			}
			p := netfault.Partition{From: from, To: to}
			if len(parts) == 3 {
				for _, tok := range strings.Split(parts[2], "+") {
					tok = strings.TrimSpace(tok)
					if tok == "" {
						return nil, fmt.Errorf("bad spec %q: empty link in list", item)
					}
					idx, err := strconv.Atoi(tok)
					if err != nil {
						return nil, fmt.Errorf("bad partition link %q: %v", tok, err)
					}
					if idx < 0 {
						return nil, fmt.Errorf("partition link %d must be >= 0", idx)
					}
					p.Links = append(p.Links, idx)
				}
			}
			if kind == "part" {
				cfg.Partitions = append(cfg.Partitions, p)
			} else {
				cfg.SyncPartitions = append(cfg.SyncPartitions, p)
			}
		default:
			return nil, fmt.Errorf("unknown ctrl spec %q (want loss:P[:LINK], dup:P[:LINK], lat:MEAN[:LINK], lease:T, qto:T, part:FROM:TO[:L1+L2+...], or dpart:FROM:TO[:K1+K2+...])", item)
		}
	}
	// Materialize the per-link patches over the default link model.
	if len(patches) > 0 {
		cfg.PerLink = make(map[int]netfault.Link, len(patches))
		for idx, p := range patches {
			l := cfg.Link
			if p.lat != nil {
				if *p.lat > 0 {
					l.Latency = dist.Exponential{MeanVal: *p.lat}
				} else {
					l.Latency = nil
				}
			}
			if p.loss != nil {
				l.Loss = *p.loss
			}
			if p.dup != nil {
				l.Dup = *p.dup
			}
			cfg.PerLink[idx] = l
		}
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	return cfg, nil
}
