package cli

import (
	"strings"
	"testing"

	"heterosched/internal/cluster"
	"heterosched/internal/sim"
)

// TestOverloadParamsBuild covers the spec grammar end to end: defaults
// collapse to a nil config, each mechanism round-trips, and malformed
// specs fail with the flag name in the message.
func TestOverloadParamsBuild(t *testing.T) {
	if cfg, err := (OverloadParams{}).Build(); err != nil || cfg != nil {
		t.Fatalf("default params: cfg=%+v err=%v, want nil, nil", cfg, err)
	}

	cfg, err := OverloadParams{
		QCap:     "40:oldest",
		Admit:    "reject-when-full",
		Deadline: "exp:1200:mark",
		Timeout:  300,
		Retry:    2,
		Backoff:  "1:60:0.5",
		Breaker:  "5:500:0.5:20",
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.QueueCap != 40 || cfg.Drop != sim.DropOldest ||
		cfg.Admission != cluster.RejectWhenFull ||
		cfg.Deadline == nil || cfg.DeadlineAction != cluster.DeadlineMark ||
		cfg.Timeout != 300 || cfg.RetryBudget != 2 ||
		cfg.BackoffBase != 1 || cfg.BackoffMax != 60 || cfg.BackoffJitter != 0.5 ||
		cfg.Breaker == nil || cfg.Breaker.Consecutive != 5 || cfg.Breaker.Window != 20 {
		t.Errorf("full spec mis-parsed: %+v (breaker %+v)", cfg, cfg.Breaker)
	}

	if cfg, err := (OverloadParams{Admit: "token-bucket:2.5"}).Build(); err != nil ||
		cfg.Admission != cluster.TokenBucketAdmission || cfg.TokenRate != 2.5 || cfg.TokenBurst != 1 {
		t.Errorf("token-bucket default burst: cfg=%+v err=%v", cfg, err)
	}
	if d, action, err := ParseDeadlineSpec("uni:100:200"); err != nil ||
		action != cluster.DeadlineKill || d.Mean() != 150 {
		t.Errorf("uni deadline: d=%v action=%v err=%v", d, action, err)
	}

	bad := []struct {
		params OverloadParams
		flag   string
	}{
		{OverloadParams{QCap: "-3"}, "-qcap"},
		{OverloadParams{QCap: "4:latest"}, "-qcap"},
		{OverloadParams{QCap: "many"}, "-qcap"},
		{OverloadParams{Admit: "reject"}, "-admit"},
		{OverloadParams{Admit: "token-bucket:0"}, "-admit"},
		{OverloadParams{Admit: "token-bucket:1:0.2"}, "-admit"},
		{OverloadParams{Deadline: "exp"}, "-deadline"},
		{OverloadParams{Deadline: "exp:-5"}, "-deadline"},
		{OverloadParams{Deadline: "uni:200:100"}, "-deadline"},
		{OverloadParams{Deadline: "norm:5:1"}, "-deadline"},
		{OverloadParams{Deadline: "exp:10:maybe"}, "-deadline"},
		{OverloadParams{Timeout: -1}, "-timeout"},
		{OverloadParams{Retry: -1}, "-retry"},
		{OverloadParams{Backoff: "5"}, "-backoff"},
		{OverloadParams{Backoff: "5:2"}, "-backoff"},
		{OverloadParams{Backoff: "1:60:2"}, "-backoff"},
		{OverloadParams{Breaker: "3"}, "-breaker"},
		{OverloadParams{Breaker: "3:0"}, "-breaker"},
		{OverloadParams{Breaker: "0:10"}, "breaker"},
		{OverloadParams{Breaker: "3:10:0.5"}, "-breaker"},
		{OverloadParams{Admit: "reject-when-full"}, "queue cap"},
	}
	for _, tc := range bad {
		cfg, err := tc.params.Build()
		if err == nil {
			t.Errorf("params %+v accepted: %+v", tc.params, cfg)
			continue
		}
		if !strings.Contains(err.Error(), tc.flag) {
			t.Errorf("params %+v: error %q does not name %q", tc.params, err, tc.flag)
		}
	}
}
