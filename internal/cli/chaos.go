package cli

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file parses the -chaos flag shared by the chaos front end: the
// search-space specification the scenario generator samples from. The
// sampled scenarios themselves serialize through internal/chaos (which
// reuses the other parsers in this package for its layer grammars); the
// search spec stays here so every front-end grammar lives in one
// package, fuzzed the same way (FuzzChaosSpecs in fuzz_test.go).

// ChaosParams are the raw chaos-search flag values.
type ChaosParams struct {
	// Chaos is a comma-separated search spec:
	// seeds:N,intensity:X,dims:fail+over+drift+net,dur:T,rho:R,
	// speeds:S1+S2+...,seed:S,stall:T,insys:N. Empty disables the search.
	Chaos string
}

// ChaosSearch is the parsed search configuration consumed by the
// internal/chaos generator: how many scenarios to sample, how hard to
// push each fault dimension, and which dimensions participate. It is
// plain data — cli sits below internal/chaos in the dependency order.
type ChaosSearch struct {
	// Scenarios is the number of seeded scenarios to sample (seeds:N).
	Scenarios int
	// Intensity in (0, 1] scales every sampled fault parameter from
	// mild toward the configured maxima (intensity:X, default 0.5).
	Intensity float64
	// DimFaults/DimOverload/DimDrift/DimNet/DimCtrl gate the fault
	// layers the sampler may compose (dims:fail+over+drift+net+ctrl,
	// default all).
	DimFaults, DimOverload, DimDrift, DimNet, DimCtrl bool
	// Duration is the per-scenario horizon in simulated seconds
	// (dur:T, default 2e4).
	Duration float64
	// Rho is the base utilization; 0 lets the sampler draw one per
	// scenario (rho:R).
	Rho float64
	// Speeds is the relative speed vector (speeds:1+1+2+10, '+'
	// separated because the item list itself is comma-separated).
	Speeds []float64
	// Seed is the master search seed; scenario k derives its own
	// substream from it (seed:S, default 1).
	Seed uint64
	// Stall is the progress-watchdog horizon: a window of that many
	// simulated seconds with jobs in the system but no terminal outcome
	// is a violation. 0 picks a default from the duration (stall:T).
	Stall float64
	// MaxInSystem is the watchdog's in-system ceiling; 0 picks a
	// default from the sampled load (insys:N).
	MaxInSystem int64
}

// Build parses and validates the chaos flag. Empty input returns
// (nil, nil): no search, nothing constructed.
func (p ChaosParams) Build() (*ChaosSearch, error) {
	cs, err := ParseChaosSpec(p.Chaos)
	if err != nil {
		return nil, fmt.Errorf("-chaos: %v", err)
	}
	return cs, nil
}

// ParseChaosSpec parses the comma-separated chaos search spec. Empty
// input returns nil. Defaults: 50 scenarios, intensity 0.5, all four
// dimensions, duration 2e4, speeds 1,1,2,10, seed 1, auto watchdog.
func ParseChaosSpec(s string) (*ChaosSearch, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	cs := &ChaosSearch{
		Scenarios: 50,
		Intensity: 0.5,
		DimFaults: true, DimOverload: true, DimDrift: true, DimNet: true, DimCtrl: true,
		Duration: 2e4,
		Speeds:   []float64{1, 1, 2, 10},
		Seed:     1,
	}
	seen := map[string]bool{}
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		kind, rest, _ := strings.Cut(item, ":")
		kind = strings.TrimSpace(kind)
		rest = strings.TrimSpace(rest)
		if seen[kind] {
			return nil, fmt.Errorf("duplicate chaos item %q", kind)
		}
		seen[kind] = true
		num := func(what string) (float64, error) {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				return 0, fmt.Errorf("bad %s %q: %v", what, rest, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("%s %v must be finite", what, v)
			}
			return v, nil
		}
		switch kind {
		case "seeds":
			n, err := strconv.Atoi(rest)
			if err != nil {
				return nil, fmt.Errorf("bad scenario count %q: %v", rest, err)
			}
			if n < 1 {
				return nil, fmt.Errorf("scenario count %d must be >= 1", n)
			}
			cs.Scenarios = n
		case "intensity":
			v, err := num("intensity")
			if err != nil {
				return nil, err
			}
			if !(v > 0 && v <= 1) {
				return nil, fmt.Errorf("intensity %v outside (0, 1]", v)
			}
			cs.Intensity = v
		case "dims":
			cs.DimFaults, cs.DimOverload, cs.DimDrift, cs.DimNet, cs.DimCtrl = false, false, false, false, false
			for _, d := range strings.Split(rest, "+") {
				switch strings.TrimSpace(d) {
				case "fail":
					cs.DimFaults = true
				case "over":
					cs.DimOverload = true
				case "drift":
					cs.DimDrift = true
				case "net":
					cs.DimNet = true
				case "ctrl":
					cs.DimCtrl = true
				case "":
					continue
				default:
					return nil, fmt.Errorf("unknown chaos dimension %q (want fail, over, drift, net or ctrl)", strings.TrimSpace(d))
				}
			}
			if !cs.DimFaults && !cs.DimOverload && !cs.DimDrift && !cs.DimNet && !cs.DimCtrl {
				return nil, fmt.Errorf("empty dims %q (want at least one of fail, over, drift, net, ctrl)", item)
			}
		case "dur":
			v, err := num("duration")
			if err != nil {
				return nil, err
			}
			if !(v > 0) {
				return nil, fmt.Errorf("duration %v must be positive", v)
			}
			cs.Duration = v
		case "rho":
			v, err := num("rho")
			if err != nil {
				return nil, err
			}
			if v < 0 || v > MaxRho {
				return nil, fmt.Errorf("rho %v outside [0, %v]", v, float64(MaxRho))
			}
			cs.Rho = v
		case "speeds":
			sp, err := ParseSpeeds(strings.ReplaceAll(rest, "+", ","))
			if err != nil {
				return nil, err
			}
			cs.Speeds = sp
		case "seed":
			v, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad seed %q: %v", rest, err)
			}
			cs.Seed = v
		case "stall":
			v, err := num("stall horizon")
			if err != nil {
				return nil, err
			}
			if v < 0 {
				return nil, fmt.Errorf("stall horizon %v must be >= 0 (0 = auto)", v)
			}
			cs.Stall = v
		case "insys":
			n, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad in-system cap %q: %v", rest, err)
			}
			if n < 0 {
				return nil, fmt.Errorf("in-system cap %d must be >= 0 (0 = auto)", n)
			}
			cs.MaxInSystem = n
		default:
			return nil, fmt.Errorf("unknown chaos item %q (want seeds:N, intensity:X, dims:fail+over+drift+net+ctrl, dur:T, rho:R, speeds:S1+S2+..., seed:S, stall:T or insys:N)", kind)
		}
	}
	if cs.Stall > 0 && cs.Stall > cs.Duration {
		return nil, fmt.Errorf("stall horizon %v exceeds the scenario duration %v", cs.Stall, cs.Duration)
	}
	return cs, nil
}
