package cli

import (
	"strings"
	"testing"

	"heterosched/internal/dist"
	"heterosched/internal/faults"
	"heterosched/internal/sched"
)

func TestParseSpeeds(t *testing.T) {
	good, err := ParseSpeeds(" 1, 2 ,10 ")
	if err != nil || len(good) != 3 || good[2] != 10 {
		t.Fatalf("ParseSpeeds = %v, %v", good, err)
	}
	for _, bad := range []string{"", " , ", "1,x", "1,-2", "0", "1,Inf", "1,NaN"} {
		if _, err := ParseSpeeds(bad); err == nil {
			t.Errorf("ParseSpeeds(%q) accepted", bad)
		}
	}
}

func TestRunParamsValidate(t *testing.T) {
	base := RunParams{Rho: 0.5, Duration: 1e5, Reps: 3, CV: 3, MeanSize: 76.8}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*RunParams)
		flag string
	}{
		{"rho negative", func(p *RunParams) { p.Rho = -0.1 }, "-rho"},
		{"rho beyond cap", func(p *RunParams) { p.Rho = MaxRho + 1 }, "-rho"},
		{"duration zero", func(p *RunParams) { p.Duration = 0 }, "-duration"},
		{"reps zero", func(p *RunParams) { p.Reps = 0 }, "-reps"},
		{"cv below one", func(p *RunParams) { p.CV = 0.5 }, "-cv"},
		{"quantum negative", func(p *RunParams) { p.Quantum = -1 }, "-quantum"},
		{"meansize zero", func(p *RunParams) { p.MeanSize = 0 }, "-meansize"},
	}
	for _, tc := range cases {
		p := base
		tc.mut(&p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.flag) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.flag)
		}
	}
}

func TestValidateSweepRange(t *testing.T) {
	if err := ValidateSweepRange(0.3, 0.9, 0.1); err != nil {
		t.Fatalf("valid range rejected: %v", err)
	}
	for _, tc := range [][3]float64{{0.9, 0.3, 0.1}, {0.3, 0.9, 0}, {-0.1, 0.9, 0.1}, {0.3, MaxRho + 1, 0.1}} {
		if err := ValidateSweepRange(tc[0], tc[1], tc[2]); err == nil {
			t.Errorf("range %v accepted", tc)
		}
	}
}

func TestFaultParamsBuild(t *testing.T) {
	// Disabled: zero MTBF yields no config, any realloc mode still parses.
	cfg, mode, err := FaultParams{Realloc: "resolve"}.Build()
	if err != nil || cfg != nil || mode != sched.ReallocResolve {
		t.Fatalf("disabled build = %v, %v, %v", cfg, mode, err)
	}
	// Enabled round trip.
	cfg, mode, err = FaultParams{MTBF: 2e4, MTTR: 2e3, Fate: "requeue", Retries: 5, Detect: 10, Realloc: "stale"}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Enabled() || cfg.Fate != faults.RequeueToDispatcher || cfg.MaxRetries != 5 || cfg.DetectionLag != 10 {
		t.Errorf("built config %+v wrong", cfg)
	}
	if mode != sched.ReallocStale {
		t.Errorf("mode %v, want stale", mode)
	}
	if m := cfg.Uptime.Mean(); m != 2e4 {
		t.Errorf("uptime mean %v, want 2e4", m)
	}
	// Rejections, each naming its flag.
	bad := []struct {
		p    FaultParams
		flag string
	}{
		{FaultParams{MTBF: -1, MTTR: 1, Fate: "lost", Realloc: "stale"}, "-mtbf"},
		{FaultParams{MTBF: 1, MTTR: 0, Fate: "lost", Realloc: "stale"}, "-mttr"},
		{FaultParams{MTBF: 1, MTTR: 1, Fate: "evaporate", Realloc: "stale"}, "-fate"},
		{FaultParams{MTBF: 1, MTTR: 1, Fate: "lost", Retries: -1, Realloc: "stale"}, "-retries"},
		{FaultParams{MTBF: 1, MTTR: 1, Fate: "lost", Detect: -1, Realloc: "stale"}, "-detect"},
		{FaultParams{MTBF: 1, MTTR: 1, Fate: "lost", Realloc: "often"}, "-realloc"},
	}
	for _, tc := range bad {
		_, _, err := tc.p.Build()
		if err == nil {
			t.Errorf("%+v accepted", tc.p)
			continue
		}
		if !strings.Contains(err.Error(), tc.flag) {
			t.Errorf("%+v: error %q does not name %s", tc.p, err, tc.flag)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	opts := PolicyOptions{Computers: 4}
	for _, name := range []string{"WRAN", "ORAN", "WRR", "ORR", "LL", "LL*", "JSQ2", "ORRCAP0.9", "ORR-10", "orr"} {
		f, err := ParsePolicy(name, opts)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", name, err)
			continue
		}
		if f() == nil {
			t.Errorf("ParsePolicy(%q): nil policy", name)
		}
	}
	for _, name := range []string{"", "XYZ", "ORRCAP2", "ORRCAPx", "ORR-200"} {
		if _, err := ParsePolicy(name, opts); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", name)
		}
	}
	// ORRA requires a failure model...
	if _, err := ParsePolicy("ORRA", opts); err == nil {
		t.Error("ORRA accepted without a failure model")
	}
	// ...and with one, the realloc mode is applied to the static policy.
	opts.Faults = &faults.Config{Uptime: dist.NewExponential(2e4), Downtime: dist.NewExponential(2e3)}
	opts.Realloc = sched.ReallocResolve
	f, err := ParsePolicy("ORRA", opts)
	if err != nil {
		t.Fatalf("ORRA with failure model: %v", err)
	}
	st, ok := f().(*sched.Static)
	if !ok || st.Realloc != sched.ReallocResolve {
		t.Errorf("ORRA factory = %#v, want *sched.Static with resolve mode", f())
	}
}

func TestParsePolicies(t *testing.T) {
	names, factories, err := ParsePolicies(" ORR , WRR ,LL", PolicyOptions{Computers: 2})
	if err != nil || len(names) != 3 || len(factories) != 3 {
		t.Fatalf("ParsePolicies = %v, %d factories, %v", names, len(factories), err)
	}
	if _, _, err := ParsePolicies(" , ", PolicyOptions{}); err == nil {
		t.Error("empty list accepted")
	}
	if _, _, err := ParsePolicies("ORR,nope", PolicyOptions{}); err == nil {
		t.Error("bad entry accepted")
	}
}
