package cli

import (
	"os"
	"path/filepath"
	"testing"
)

func TestProbeParamsValidateAndActive(t *testing.T) {
	if err := (ProbeParams{}).Validate(); err != nil {
		t.Errorf("zero params rejected: %v", err)
	}
	if (ProbeParams{}).Active() {
		t.Error("zero params active")
	}
	if err := (ProbeParams{SampleDT: -1}).Validate(); err == nil {
		t.Error("negative -sample-dt accepted")
	}
	for _, p := range []ProbeParams{
		{Probe: true},
		{Events: "x.jsonl"},
		{SampleDT: 10},
	} {
		if !p.Active() {
			t.Errorf("%+v should be active", p)
		}
	}
	// A manifest alone needs no instrumented pass.
	if (ProbeParams{Manifest: "m.json"}).Active() {
		t.Error("manifest-only params active")
	}
}

func TestProbeParamsBuild(t *testing.T) {
	pb, cleanup, err := ProbeParams{}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if pb != nil {
		t.Error("inactive params built a probe")
	}
	if err := cleanup(); err != nil {
		t.Errorf("no-op cleanup: %v", err)
	}

	path := filepath.Join(t.TempDir(), "ev.jsonl")
	pb, cleanup, err = ProbeParams{Probe: true, Events: path, SampleDT: 5}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !pb.Enabled() || !pb.EventsOn() || pb.SampleDT() != 5 {
		t.Errorf("probe misconfigured: enabled=%v events=%v dt=%v", pb.Enabled(), pb.EventsOn(), pb.SampleDT())
	}
	if err := cleanup(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("events file not created: %v", err)
	}
}
