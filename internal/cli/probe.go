package cli

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"strings"

	"heterosched/internal/probe"
)

// ProbeParams are the observability flags shared by the front ends
// (-probe, -events, -manifest, -sample-dt, -debug-addr). All of them
// default off; a run with none set attaches no probe and stays
// bit-identical to an uninstrumented run.
type ProbeParams struct {
	// Probe activates the metrics registry (per-computer queue length,
	// up/down, breaker state, utilization, in-system count, interarrival
	// statistics) on an instrumented pass.
	Probe bool
	// Events is the lifecycle event stream path; a ".csv" suffix selects
	// the CSV exporter, anything else JSONL. Empty disables the stream.
	Events string
	// Manifest is the run-manifest JSON path ("" disables).
	Manifest string
	// SampleDT, when positive, samples the metric series on a fixed
	// cadence in addition to event boundaries. Implies Probe.
	SampleDT float64
	// DebugAddr, when non-empty, serves expvar and pprof on this address
	// for the lifetime of the process (e.g. "localhost:6060").
	DebugAddr string
	// Spans is the Chrome trace-event JSON output path for per-job span
	// trees (viewable in Perfetto / chrome://tracing). Empty disables the
	// export; span assembly itself also runs whenever Probe is set, so
	// the T̄ decomposition tables print without the file.
	Spans string
}

// Validate checks the observability flags.
func (p ProbeParams) Validate() error {
	if p.SampleDT < 0 || math.IsNaN(p.SampleDT) || math.IsInf(p.SampleDT, 0) {
		return fmt.Errorf("-sample-dt %v: must be >= 0 and finite (0 disables cadence sampling)", p.SampleDT)
	}
	return nil
}

// Active reports whether an instrumented simulation pass is needed —
// any of the probe facilities beyond the manifest was requested. (A
// manifest alone records configuration and the paper metrics without
// instrumenting the run.)
func (p ProbeParams) Active() bool {
	return p.Probe || p.Events != "" || p.SampleDT > 0 || p.Spans != ""
}

// NewEventWriter picks the exporter for an event-stream path: CSV when
// the path ends in ".csv", JSONL otherwise.
func NewEventWriter(path string, f *os.File) probe.EventWriter {
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		return probe.NewCSVWriter(f)
	}
	return probe.NewJSONLWriter(f)
}

// Build opens the events file (when requested) and assembles the probe.
// The returned cleanup flushes the probe's event stream and closes the
// file; call it after the instrumented run. A nil probe (with a no-op
// cleanup) means no instrumentation was requested.
func (p ProbeParams) Build() (*probe.Probe, func() error, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if !p.Active() {
		return nil, func() error { return nil }, nil
	}
	var w probe.EventWriter
	var f *os.File
	if p.Events != "" {
		var err error
		f, err = os.Create(p.Events)
		if err != nil {
			return nil, nil, fmt.Errorf("-events: %v", err)
		}
		w = NewEventWriter(p.Events, f)
	}
	var tw *probe.ChromeTraceWriter
	var sf *os.File
	var sb *bufio.Writer
	if p.Spans != "" {
		var err error
		sf, err = os.Create(p.Spans)
		if err != nil {
			if f != nil {
				f.Close()
			}
			return nil, nil, fmt.Errorf("-spans: %v", err)
		}
		sb = bufio.NewWriterSize(sf, 1<<16)
		tw = probe.NewChromeTraceWriter(sb)
	}
	opts := probe.Options{
		Metrics: p.Probe, SampleDT: p.SampleDT, Events: w,
		Spans: p.Probe || p.Spans != "",
	}
	if tw != nil { // avoid a typed-nil SpanSink turning span export on
		opts.SpanSink = tw
	}
	pb, err := probe.New(opts)
	if err != nil {
		if f != nil {
			f.Close()
		}
		if sf != nil {
			sf.Close()
		}
		return nil, nil, err
	}
	cleanup := func() error {
		err := pb.Flush()
		if tw != nil {
			if cerr := tw.Close(); err == nil {
				err = cerr
			}
			if cerr := sb.Flush(); err == nil {
				err = cerr
			}
		}
		if sf != nil {
			if cerr := sf.Close(); err == nil {
				err = cerr
			}
		}
		if f != nil {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		return err
	}
	return pb, cleanup, nil
}
