package cli

import (
	"strings"
	"testing"
)

// TestSpecParsersConsistency audits every spec grammar in this package
// against one shared contract: surrounding whitespace is tolerated
// (flags often arrive through shell quoting and config files), and
// NaN, infinity and negative magnitudes are rejected with a non-empty
// message rather than laundered into a config. Each grammar has its own
// deep tests; this table keeps the *edges* of all of them aligned, so a
// new parser cannot quietly diverge on the basics.
func TestSpecParsersConsistency(t *testing.T) {
	type parser struct {
		name  string
		parse func(string) error
		valid string   // a representative accepted spec
		bad   []string // NaN / Inf / negative variants, all rejected
	}
	parsers := []parser{
		{
			name:  "speeds",
			parse: func(s string) error { _, err := ParseSpeeds(s); return err },
			valid: "1,1,2,10",
			bad:   []string{"nan,1", "inf,1", "-1,2", "0,2"},
		},
		{
			name:  "drift",
			parse: func(s string) error { _, err := ParseDriftSpec(s); return err },
			valid: "lstep:20000:2",
			bad:   []string{"lstep:nan:2", "lstep:inf:2", "lstep:-5:2", "lstep:20000:nan"},
		},
		{
			name:  "netfault",
			parse: func(s string) error { _, err := ParseNetfaultSpec(s); return err },
			valid: "loss:0.1,lat:5",
			bad:   []string{"loss:nan", "lat:inf", "loss:-0.1", "dup:nan"},
		},
		{
			name: "ackto",
			parse: func(s string) error {
				_, _, err := ParseAckSpec(s)
				return err
			},
			valid: "60:4",
			bad:   []string{"nan:4", "inf:4", "-60:4"},
		},
		{
			name: "qcap",
			parse: func(s string) error {
				_, _, err := ParseQueueCapSpec(s)
				return err
			},
			valid: "40:oldest",
			bad:   []string{"-1", "nan"},
		},
		{
			name: "admit",
			parse: func(s string) error {
				_, _, _, err := ParseAdmissionSpec(s)
				return err
			},
			valid: "token-bucket:2.5:8",
			bad:   []string{"token-bucket:nan:8", "token-bucket:inf:8", "token-bucket:-2:8"},
		},
		{
			name: "deadline",
			parse: func(s string) error {
				_, _, err := ParseDeadlineSpec(s)
				return err
			},
			valid: "exp:1200:kill",
			bad:   []string{"exp:nan:kill", "exp:inf:kill", "exp:-5:kill"},
		},
		{
			name: "backoff",
			parse: func(s string) error {
				_, _, _, err := ParseBackoffSpec(s)
				return err
			},
			valid: "1:60:0.5",
			bad:   []string{"nan:60", "inf:60", "-1:60", "1:60:nan"},
		},
		{
			name:  "breaker",
			parse: func(s string) error { _, err := ParseBreakerSpec(s); return err },
			valid: "5:500",
			bad:   []string{"-5:500", "5:nan", "5:-500"},
		},
		{
			name:  "chaos",
			parse: func(s string) error { _, err := ParseChaosSpec(s); return err },
			valid: "seeds:10,intensity:0.5,dur:20000",
			bad:   []string{"intensity:nan", "dur:inf", "seeds:-1", "rho:-0.5", "stall:nan"},
		},
		{
			name: "dispatchers",
			parse: func(s string) error {
				_, _, err := ParseDispatchersSpec(s)
				return err
			},
			valid: "4:hash",
			bad:   []string{"0", "-2", "4:mod", "nan", "2.5"},
		},
		{
			name:  "sync",
			parse: func(s string) error { _, err := ParseSyncSpec(s); return err },
			valid: "25",
			bad:   []string{"nan", "inf", "-5", "often", "0"},
		},
		{
			name:  "ctrl",
			parse: func(s string) error { _, err := ParseCtrlSpec(s); return err },
			valid: "loss:0.1,lat:5,lease:200,qto:50",
			bad:   []string{"loss:nan", "lat:inf", "loss:-0.1", "lease:-5", "qto:nan", "lease:0"},
		},
	}

	for _, p := range parsers {
		t.Run(p.name, func(t *testing.T) {
			if err := p.parse(p.valid); err != nil {
				t.Fatalf("%s rejects its own representative spec %q: %v", p.name, p.valid, err)
			}
			// Whitespace around the whole spec must not change the verdict.
			padded := "  " + p.valid + "\t"
			if err := p.parse(padded); err != nil {
				t.Errorf("%s rejects whitespace-padded %q: %v", p.name, padded, err)
			}
			for _, bad := range p.bad {
				err := p.parse(bad)
				if err == nil {
					t.Errorf("%s accepts %q, want rejection", p.name, bad)
					continue
				}
				if strings.TrimSpace(err.Error()) == "" {
					t.Errorf("%s rejects %q with an empty message", p.name, bad)
				}
			}
		})
	}
}
