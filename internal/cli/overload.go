package cli

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"heterosched/internal/cluster"
	"heterosched/internal/dispatch"
	"heterosched/internal/dist"
	"heterosched/internal/sim"
)

// This file parses the overload-protection flags shared by the front
// ends: -qcap, -admit, -deadline, -timeout, -retry, -backoff and
// -breaker. Every spec parser returns a clean error on malformed input
// (they are fuzzed in fuzz_test.go); nothing here panics.

// OverloadParams are the raw overload-protection flag values.
type OverloadParams struct {
	QCap     string  // "K" or "K:oldest|newest"; "" or "0" disables
	Admit    string  // none | reject-when-full | token-bucket:RATE[:BURST]
	Deadline string  // exp:MEAN | const:V | uni:LO:HI, optional :kill|:mark
	Timeout  float64 // dispatcher timeout in seconds; 0 disables
	Retry    int     // retry budget after timeouts/rejections
	Backoff  string  // BASE:MAX[:JITTER]; "" keeps defaults
	Breaker  string  // CONSEC:COOLDOWN[:RATIO:WINDOW]; "" disables
}

// Build validates the overload flags and assembles the cluster
// configuration. All-default parameters return nil: no overload layer at
// all (bit-identical runs).
func (p OverloadParams) Build() (*cluster.OverloadConfig, error) {
	cfg := &cluster.OverloadConfig{}
	var err error
	if cfg.QueueCap, cfg.Drop, err = ParseQueueCapSpec(p.QCap); err != nil {
		return nil, fmt.Errorf("-qcap: %v", err)
	}
	if cfg.Admission, cfg.TokenRate, cfg.TokenBurst, err = ParseAdmissionSpec(p.Admit); err != nil {
		return nil, fmt.Errorf("-admit: %v", err)
	}
	if cfg.Deadline, cfg.DeadlineAction, err = ParseDeadlineSpec(p.Deadline); err != nil {
		return nil, fmt.Errorf("-deadline: %v", err)
	}
	if p.Timeout < 0 || math.IsNaN(p.Timeout) || math.IsInf(p.Timeout, 0) {
		return nil, fmt.Errorf("-timeout %v: must be >= 0 and finite", p.Timeout)
	}
	cfg.Timeout = p.Timeout
	if p.Retry < 0 {
		return nil, fmt.Errorf("-retry %d: must be >= 0", p.Retry)
	}
	cfg.RetryBudget = p.Retry
	if cfg.BackoffBase, cfg.BackoffMax, cfg.BackoffJitter, err = ParseBackoffSpec(p.Backoff); err != nil {
		return nil, fmt.Errorf("-backoff: %v", err)
	}
	if cfg.Breaker, err = ParseBreakerSpec(p.Breaker); err != nil {
		return nil, fmt.Errorf("-breaker: %v", err)
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// ParseQueueCapSpec parses "K" or "K:oldest|newest". Empty and "0"
// disable the bound (cap 0).
func ParseQueueCapSpec(s string) (int, sim.DropPolicy, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, sim.DropNewest, nil
	}
	capPart, dropPart, hasDrop := strings.Cut(s, ":")
	capv, err := strconv.Atoi(strings.TrimSpace(capPart))
	if err != nil {
		return 0, 0, fmt.Errorf("bad queue cap %q: %v", capPart, err)
	}
	if capv < 0 {
		return 0, 0, fmt.Errorf("queue cap %d must be >= 0 (0 disables the bound)", capv)
	}
	drop := sim.DropNewest
	if hasDrop {
		switch strings.TrimSpace(dropPart) {
		case "newest":
			drop = sim.DropNewest
		case "oldest":
			drop = sim.DropOldest
		default:
			return 0, 0, fmt.Errorf("bad drop policy %q (want oldest or newest)", dropPart)
		}
	}
	return capv, drop, nil
}

// ParseAdmissionSpec parses "none", "reject-when-full" or
// "token-bucket:RATE[:BURST]" (burst defaults to 1).
func ParseAdmissionSpec(s string) (cluster.AdmissionPolicy, float64, float64, error) {
	s = strings.TrimSpace(s)
	switch s {
	case "", "none":
		return cluster.AdmitAll, 0, 0, nil
	case "reject-when-full":
		return cluster.RejectWhenFull, 0, 0, nil
	}
	if rest, ok := strings.CutPrefix(s, "token-bucket:"); ok {
		parts := strings.Split(rest, ":")
		if len(parts) > 2 {
			return 0, 0, 0, fmt.Errorf("bad token-bucket spec %q (want token-bucket:RATE[:BURST])", s)
		}
		rate, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("bad token rate %q: %v", parts[0], err)
		}
		burst := 1.0
		if len(parts) == 2 {
			if burst, err = strconv.ParseFloat(strings.TrimSpace(parts[1]), 64); err != nil {
				return 0, 0, 0, fmt.Errorf("bad token burst %q: %v", parts[1], err)
			}
		}
		if !(rate > 0) || math.IsInf(rate, 0) {
			return 0, 0, 0, fmt.Errorf("token rate %v must be positive and finite", rate)
		}
		if !(burst >= 1) || math.IsInf(burst, 0) {
			return 0, 0, 0, fmt.Errorf("token burst %v must be at least 1", burst)
		}
		return cluster.TokenBucketAdmission, rate, burst, nil
	}
	return 0, 0, 0, fmt.Errorf("unknown admission policy %q (want none, reject-when-full or token-bucket:RATE[:BURST])", s)
}

// ParseDeadlineSpec parses a relative-deadline distribution with an
// optional action suffix: "exp:MEAN", "const:V" or "uni:LO:HI", each
// optionally followed by ":kill" (default) or ":mark". Empty disables
// deadlines.
func ParseDeadlineSpec(s string) (dist.Distribution, cluster.DeadlineAction, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, cluster.DeadlineKill, nil
	}
	parts := strings.Split(s, ":")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	action := cluster.DeadlineKill
	switch parts[len(parts)-1] {
	case "kill":
		parts = parts[:len(parts)-1]
	case "mark":
		action = cluster.DeadlineMark
		parts = parts[:len(parts)-1]
	}
	num := func(i int, what string) (float64, error) {
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[i]), 64)
		if err != nil {
			return 0, fmt.Errorf("bad %s %q: %v", what, parts[i], err)
		}
		if !(v > 0) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("%s %v must be positive and finite", what, v)
		}
		return v, nil
	}
	if len(parts) == 0 {
		return nil, 0, fmt.Errorf("bad deadline spec %q (want exp:MEAN, const:V or uni:LO:HI, optional :kill|:mark)", s)
	}
	switch parts[0] {
	case "exp":
		if len(parts) != 2 {
			return nil, 0, fmt.Errorf("bad deadline spec %q (want exp:MEAN)", s)
		}
		mean, err := num(1, "deadline mean")
		if err != nil {
			return nil, 0, err
		}
		return dist.NewExponential(mean), action, nil
	case "const":
		if len(parts) != 2 {
			return nil, 0, fmt.Errorf("bad deadline spec %q (want const:V)", s)
		}
		v, err := num(1, "deadline")
		if err != nil {
			return nil, 0, err
		}
		return dist.Deterministic{Value: v}, action, nil
	case "uni":
		if len(parts) != 3 {
			return nil, 0, fmt.Errorf("bad deadline spec %q (want uni:LO:HI)", s)
		}
		lo, err := num(1, "deadline lower bound")
		if err != nil {
			return nil, 0, err
		}
		hi, err := num(2, "deadline upper bound")
		if err != nil {
			return nil, 0, err
		}
		if hi < lo {
			return nil, 0, fmt.Errorf("deadline bounds inverted: %v > %v", lo, hi)
		}
		return dist.Uniform{Lo: lo, Hi: hi}, action, nil
	}
	return nil, 0, fmt.Errorf("unknown deadline distribution %q (want exp, const or uni)", parts[0])
}

// ParseBackoffSpec parses "BASE:MAX[:JITTER]". Empty keeps the built-in
// defaults (1 s base, 60 s cap, no jitter).
func ParseBackoffSpec(s string) (base, max, jitter float64, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, 0, 0, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 2 && len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("bad backoff spec %q (want BASE:MAX[:JITTER])", s)
	}
	if base, err = strconv.ParseFloat(strings.TrimSpace(parts[0]), 64); err != nil {
		return 0, 0, 0, fmt.Errorf("bad backoff base %q: %v", parts[0], err)
	}
	if max, err = strconv.ParseFloat(strings.TrimSpace(parts[1]), 64); err != nil {
		return 0, 0, 0, fmt.Errorf("bad backoff max %q: %v", parts[1], err)
	}
	if !(base > 0) || math.IsInf(base, 0) {
		return 0, 0, 0, fmt.Errorf("backoff base %v must be positive and finite", base)
	}
	if max < base || math.IsInf(max, 0) || math.IsNaN(max) {
		return 0, 0, 0, fmt.Errorf("backoff max %v must be >= base %v and finite", max, base)
	}
	if len(parts) == 3 {
		if jitter, err = strconv.ParseFloat(strings.TrimSpace(parts[2]), 64); err != nil {
			return 0, 0, 0, fmt.Errorf("bad backoff jitter %q: %v", parts[2], err)
		}
		if jitter < 0 || jitter > 1 || math.IsNaN(jitter) {
			return 0, 0, 0, fmt.Errorf("backoff jitter %v must be in [0, 1]", jitter)
		}
	}
	return base, max, jitter, nil
}

// ParseBreakerSpec parses "CONSEC:COOLDOWN[:RATIO:WINDOW]". CONSEC 0
// with a ratio criterion gives a pure sliding-window breaker. Empty
// disables breakers.
func ParseBreakerSpec(s string) (*dispatch.BreakerConfig, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 2 && len(parts) != 4 {
		return nil, fmt.Errorf("bad breaker spec %q (want CONSEC:COOLDOWN[:RATIO:WINDOW])", s)
	}
	consec, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return nil, fmt.Errorf("bad breaker consecutive-failure threshold %q: %v", parts[0], err)
	}
	cooldown, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return nil, fmt.Errorf("bad breaker cooldown %q: %v", parts[1], err)
	}
	cfg := &dispatch.BreakerConfig{Consecutive: consec, Cooldown: cooldown}
	if len(parts) == 4 {
		if cfg.Ratio, err = strconv.ParseFloat(strings.TrimSpace(parts[2]), 64); err != nil {
			return nil, fmt.Errorf("bad breaker ratio %q: %v", parts[2], err)
		}
		if cfg.Window, err = strconv.Atoi(strings.TrimSpace(parts[3])); err != nil {
			return nil, fmt.Errorf("bad breaker window %q: %v", parts[3], err)
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}
