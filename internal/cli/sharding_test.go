package cli

import (
	"strings"
	"testing"

	"heterosched/internal/dispatch"
	"heterosched/internal/sched"
)

func TestParseDispatchersSpec(t *testing.T) {
	cases := []struct {
		spec   string
		k      int
		by     dispatch.ShardBy
		wantOK bool
	}{
		{"", 1, dispatch.ShardRR, true},
		{"1", 1, dispatch.ShardRR, true},
		{"4", 4, dispatch.ShardRR, true},
		{"4:rr", 4, dispatch.ShardRR, true},
		{"16:hash", 16, dispatch.ShardHash, true},
		{" 8 : hash ", 8, dispatch.ShardHash, true},
		{"0", 0, 0, false},
		{"-2", 0, 0, false},
		{"4:mod", 0, 0, false},
		{"x", 0, 0, false},
		{"99999999", 0, 0, false},
		{"2.5", 0, 0, false},
	}
	for _, c := range cases {
		k, by, err := ParseDispatchersSpec(c.spec)
		if c.wantOK {
			if err != nil {
				t.Errorf("ParseDispatchersSpec(%q) = %v, want K=%d", c.spec, err, c.k)
				continue
			}
			if k != c.k || by != c.by {
				t.Errorf("ParseDispatchersSpec(%q) = %d,%v; want %d,%v", c.spec, k, by, c.k, c.by)
			}
		} else if err == nil {
			t.Errorf("ParseDispatchersSpec(%q) accepted, want rejection", c.spec)
		}
	}
}

func TestParseSyncSpec(t *testing.T) {
	for spec, want := range map[string]float64{
		"": 0, "never": 0, "NEVER": 0, "25": 25, " 1e3 ": 1000,
	} {
		got, err := ParseSyncSpec(spec)
		if err != nil || got != want {
			t.Errorf("ParseSyncSpec(%q) = %v, %v; want %v", spec, got, err, want)
		}
	}
	// A numeric 0 is ambiguous (it used to silently mean "never") and is
	// rejected with a pointer to the explicit spelling.
	for _, bad := range []string{"nan", "inf", "-5", "often", "1h", "0", "0.0"} {
		if _, err := ParseSyncSpec(bad); err == nil {
			t.Errorf("ParseSyncSpec(%q) accepted, want rejection", bad)
		}
	}
}

func TestScaleSpeeds(t *testing.T) {
	base := []float64{1, 2, 10}
	got, err := ScaleSpeeds(base, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 10, 1, 2, 10, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("scaled to %d speeds, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("speed[%d] = %v, want %v (cyclic tiling)", i, got[i], want[i])
		}
	}
	// n at or below the input length, or zero, is a no-op.
	for _, n := range []int{0, -1, 2, 3} {
		same, err := ScaleSpeeds(base, n)
		if err != nil || len(same) != len(base) {
			t.Errorf("ScaleSpeeds(3 speeds, %d) = %d speeds, %v; want unchanged", n, len(same), err)
		}
	}
	if _, err := ScaleSpeeds(base, MaxScaledComputers+1); err == nil {
		t.Error("ScaleSpeeds beyond the cap accepted")
	}
}

// TestParsePolicySharding verifies the sharding options flow into the
// policies: static and scalable mnemonics shard, centralized dynamic
// ones reject K > 1.
func TestParsePolicySharding(t *testing.T) {
	sharded := PolicyOptions{
		Computers: 8,
		Sharding:  ShardingParams{Dispatchers: 4, ShardBy: dispatch.ShardHash, SyncEvery: 25},
	}
	f, err := ParsePolicy("ORR", sharded)
	if err != nil {
		t.Fatal(err)
	}
	st := f().(*sched.Static)
	if st.Dispatchers != 4 || st.ShardBy != dispatch.ShardHash || st.SyncEvery != 25 {
		t.Errorf("ORR sharding not applied: %+v", st)
	}
	if st.Name() != "ORRxK4" {
		t.Errorf("sharded ORR Name() = %q, want ORRxK4", st.Name())
	}

	f, err = ParsePolicy("jsq(2)", sharded)
	if err != nil {
		t.Fatal(err)
	}
	sc := f().(*sched.Scalable)
	if sc.Dispatchers != 4 || sc.ShardBy != dispatch.ShardHash {
		t.Errorf("jsq(2) sharding not applied: %+v", sc)
	}

	for _, central := range []string{"LL", "LL*", "JSQ2"} {
		if _, err := ParsePolicy(central, sharded); err == nil {
			t.Errorf("policy %s accepted -dispatchers 4, want rejection", central)
		}
		if _, err := ParsePolicy(central, PolicyOptions{Computers: 8}); err != nil {
			t.Errorf("policy %s rejected without sharding: %v", central, err)
		}
	}
}

// TestParseScalableMnemonics covers the jsq/pod/jiq grammar, including
// case-insensitivity and malformed members.
func TestParseScalableMnemonics(t *testing.T) {
	opts := PolicyOptions{Computers: 8}
	accept := map[string]string{
		"jsq(2)":       "jsq(2)",
		"JSQ(3)":       "jsq(3)",
		"pod(2)":       "pod(2):speed",
		"pod(2):speed": "pod(2):speed",
		"POD(4):Alpha": "pod(4):alpha",
		"jiq":          "jiq",
		" Jiq ":        "jiq",
	}
	for spec, want := range accept {
		f, err := ParsePolicy(spec, opts)
		if err != nil {
			t.Errorf("ParsePolicy(%q) = %v", spec, err)
			continue
		}
		if got := f().Name(); got != want {
			t.Errorf("ParsePolicy(%q).Name() = %q, want %q", spec, got, want)
		}
	}
	// jsq(9) and pod(12) exceed the 8-computer fleet: sampling more
	// computers than exist is a typo, not a policy.
	for _, bad := range []string{"jsq(0)", "jsq(65)", "jsq()", "jsq(2", "jsq(2):speed", "pod(x)", "pod(2):fast", "jiq(2)", "jsq(9)", "pod(12)"} {
		if _, err := ParsePolicy(bad, opts); err == nil {
			t.Errorf("ParsePolicy(%q) accepted, want rejection", bad)
		} else if strings.TrimSpace(err.Error()) == "" {
			t.Errorf("ParsePolicy(%q) rejected with an empty message", bad)
		}
	}
}

// TestParseShardingSpecs covers the combined flag builder.
func TestParseShardingSpecs(t *testing.T) {
	p, err := ParseShardingSpecs("4:hash", "100")
	if err != nil {
		t.Fatal(err)
	}
	if p.Dispatchers != 4 || p.ShardBy != dispatch.ShardHash || p.SyncEvery != 100 || !p.Enabled() {
		t.Errorf("ParseShardingSpecs = %+v", p)
	}
	p, err = ParseShardingSpecs("1", "never")
	if err != nil {
		t.Fatal(err)
	}
	if p.Enabled() {
		t.Errorf("K=1 params report Enabled: %+v", p)
	}
	if _, err := ParseShardingSpecs("0", "never"); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := ParseShardingSpecs("4", "sometimes"); err == nil {
		t.Error("bad sync spec accepted")
	}
}
