package cli

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"heterosched/internal/dispatch"
)

// This file parses the sharded-dispatch flags: -dispatchers "K[:rr|hash]"
// selects the replica count and arrival routing, -sync "never"|seconds
// the counter-sync cadence of the Algorithm 2 replicas, and -scale N
// tiles a speed vector into the hundreds/thousands of computers the
// scalable-dispatch experiments run at.

// MaxDispatchers bounds the replica count the front ends accept; a run
// has no use for more dispatchers than arrivals per busy period, and an
// absurd K is almost always a typo.
const MaxDispatchers = 1 << 16

// ShardingParams carry the parsed sharded-dispatch configuration.
// The zero value is the paper's single central scheduler.
type ShardingParams struct {
	// Dispatchers is the replica count K (>= 1).
	Dispatchers int
	// ShardBy routes arrivals to replicas (round-robin or job-ID hash).
	ShardBy dispatch.ShardBy
	// SyncEvery is the counter-sync period in simulated seconds for the
	// Algorithm 2 replicas; 0 means never.
	SyncEvery float64
}

// Enabled reports whether the configuration shards at all.
func (p ShardingParams) Enabled() bool { return p.Dispatchers > 1 }

// Validate checks the parameter ranges with flag-oriented messages.
func (p ShardingParams) Validate() error {
	if p.Dispatchers < 0 || p.Dispatchers > MaxDispatchers {
		return fmt.Errorf("-dispatchers %d: replica count must be in [1, %d]", p.Dispatchers, MaxDispatchers)
	}
	if math.IsNaN(p.SyncEvery) || math.IsInf(p.SyncEvery, 0) || p.SyncEvery < 0 {
		return fmt.Errorf("-sync %v: sync period must be a non-negative number of seconds (0 or \"never\" disables)", p.SyncEvery)
	}
	return nil
}

// ParseDispatchersSpec parses "K" or "K:rr" or "K:hash" — the replica
// count with an optional arrival-routing mode (default rr).
func ParseDispatchersSpec(s string) (int, dispatch.ShardBy, error) {
	spec := strings.TrimSpace(s)
	if spec == "" {
		return 1, dispatch.ShardRR, nil
	}
	kPart, byPart, hasBy := strings.Cut(spec, ":")
	k, err := strconv.Atoi(strings.TrimSpace(kPart))
	if err != nil {
		return 0, 0, fmt.Errorf("-dispatchers %q: replica count %q is not an integer", s, kPart)
	}
	if k < 1 || k > MaxDispatchers {
		return 0, 0, fmt.Errorf("-dispatchers %q: replica count must be in [1, %d]", s, MaxDispatchers)
	}
	by := dispatch.ShardRR
	if hasBy {
		by, err = dispatch.ParseShardBy(strings.TrimSpace(byPart))
		if err != nil {
			return 0, 0, fmt.Errorf("-dispatchers %q: %v", s, err)
		}
	}
	return k, by, nil
}

// ParseSyncSpec parses the counter-sync period: "never" (or empty)
// disables it, any positive number is a period in simulated seconds.
// A numeric zero is rejected — a user who types a number wants syncing,
// and a period of 0 would silently mean "never" (say "never" for that).
func ParseSyncSpec(s string) (float64, error) {
	spec := strings.ToLower(strings.TrimSpace(s))
	if spec == "" || spec == "never" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(spec, 64)
	if err != nil {
		return 0, fmt.Errorf("-sync %q: want \"never\" or a period in seconds", s)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, fmt.Errorf("-sync %q: period must be a positive number of seconds", s)
	}
	if v == 0 {
		return 0, fmt.Errorf("-sync %q: sync period of 0 is ambiguous; use \"never\" to disable counter-sync", s)
	}
	return v, nil
}

// ParseShardingSpecs parses both flags into validated ShardingParams.
func ParseShardingSpecs(dispatchers, sync string) (ShardingParams, error) {
	k, by, err := ParseDispatchersSpec(dispatchers)
	if err != nil {
		return ShardingParams{}, err
	}
	every, err := ParseSyncSpec(sync)
	if err != nil {
		return ShardingParams{}, err
	}
	p := ShardingParams{Dispatchers: k, ShardBy: by, SyncEvery: every}
	return p, p.Validate()
}

// MaxScaledComputers bounds -scale: beyond this the event queue, not the
// dispatcher, is the bottleneck, and a larger value is almost always a
// typo.
const MaxScaledComputers = 1 << 20

// ScaleSpeeds tiles the speed vector cyclically out to n computers, the
// standard construction for scaling the paper's small heterogeneous
// configurations into the hundreds/thousands while preserving the speed
// mix. n <= len(speeds) (or n <= 0) returns the input unchanged.
func ScaleSpeeds(speeds []float64, n int) ([]float64, error) {
	if n > MaxScaledComputers {
		return nil, fmt.Errorf("-scale %d: at most %d computers", n, MaxScaledComputers)
	}
	if n <= len(speeds) || len(speeds) == 0 {
		return speeds, nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = speeds[i%len(speeds)]
	}
	return out, nil
}
