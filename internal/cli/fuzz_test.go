package cli

import (
	"math"
	"strings"
	"testing"

	"heterosched/internal/sched"
)

// FuzzOverloadSpecs throws arbitrary strings at the overload flag
// grammar. The contract under fuzzing: Build never panics, and whenever
// it accepts the input, the resulting configuration passes the cluster
// validator (the CLI layer must not launder invalid configs through).
func FuzzOverloadSpecs(f *testing.F) {
	f.Add("40:oldest", "reject-when-full", "exp:1200:mark", "1:60:0.5", "5:500:0.5:20", 300.0, 2)
	f.Add("", "token-bucket:2.5:8", "const:30", "", "0:100:0.9:50", 0.0, 0)
	f.Add("0", "none", "uni:100:200:kill", "2:2", "", 5.0, 1)
	f.Add(":", "token-bucket:", "exp::", "::", ":::", -1.0, -1)
	f.Add("9999999999999999999", "reject", "norm:5:1", "1:60:2", "3:10:0.5", 1e308, 1<<30)
	f.Fuzz(func(t *testing.T, qcap, admit, deadline, backoff, breaker string, timeout float64, retry int) {
		cfg, err := OverloadParams{
			QCap:     qcap,
			Admit:    admit,
			Deadline: deadline,
			Timeout:  timeout,
			Retry:    retry,
			Backoff:  backoff,
			Breaker:  breaker,
		}.Build()
		if err != nil {
			if err.Error() == "" {
				t.Fatal("empty error message")
			}
			return
		}
		if cfg == nil {
			return // all knobs disabled
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("Build accepted %q %q %q %q %q %v %d but Validate rejects: %v",
				qcap, admit, deadline, backoff, breaker, timeout, retry, verr)
		}
	})
}

// FuzzRunSpecs covers the rest of the flag surface: speed lists, the
// failure-model flags and the policy mnemonics. Nothing may panic; every
// rejection must carry a message.
func FuzzRunSpecs(f *testing.F) {
	f.Add("1,1,2,10", 20000.0, 2000.0, "requeue", "resolve", 3, 10.0, "ORR")
	f.Add("", -1.0, 0.0, "vanish", "stale", -1, -5.0, "ORR-150")
	f.Add("0,inf,nan", 1e308, 1e-300, "lost", "", 0, 0.0, "ORRCAP0")
	f.Add("2.5", 100.0, 10.0, "restart", "resolve", 1, 0.5, "ORRA")
	f.Add(",,,", 0.0, -0.0, "", "renormalize", 1<<40, 1.0, "wran,orr,LL*,jsq2")
	f.Fuzz(func(t *testing.T, speeds string, mtbf, mttr float64, fate, realloc string, retries int, detect float64, policies string) {
		if sp, err := ParseSpeeds(speeds); err == nil {
			for _, v := range sp {
				if !(v > 0) {
					t.Fatalf("ParseSpeeds(%q) let through non-positive speed %v", speeds, v)
				}
			}
		} else if err.Error() == "" {
			t.Fatal("empty error message from ParseSpeeds")
		}
		fp := FaultParams{MTBF: mtbf, MTTR: mttr, Fate: fate, Retries: retries, Detect: detect, Realloc: realloc}
		faultCfg, mode, err := fp.Build()
		if err != nil {
			if err.Error() == "" {
				t.Fatal("empty error message from FaultParams.Build")
			}
			faultCfg, mode = nil, sched.ReallocStale
		} else if faultCfg != nil {
			if verr := faultCfg.Validate(3); verr != nil {
				t.Fatalf("FaultParams %+v accepted but faults.Validate rejects: %v", fp, verr)
			}
		}
		opts := PolicyOptions{Realloc: mode, Faults: faultCfg, Computers: 3}
		if _, _, err := ParsePolicies(policies, opts); err != nil && err.Error() == "" {
			t.Fatal("empty error message from ParsePolicies")
		}
	})
}

// FuzzNetfaultSpecs throws arbitrary strings at the network-fault flag
// grammar (-netfault, -ackto, -dstate). The contract matches the other
// fuzzers: Build never panics, every rejection carries a message, and
// anything accepted passes netfault.Config.Validate for the given
// cluster size and is actually enabled (never a non-nil inert config).
func FuzzNetfaultSpecs(f *testing.F) {
	f.Add("loss:0.05,dup:0.02,lat:3", "30:4:5:60:0.5", "", 4)
	f.Add("lat:1:0,loss:0.2:3,crash:15000:100,down:buffer:256,part:1000:2000:0+1", "40", "ckpt:2500:500", 4)
	f.Add("crash:5000:50,down:failover", "25:3", "cold:4000:600", 8)
	f.Add("", "", "", 1)
	f.Add("part:0:0,loss:1", "0", "acks:1", 0)
	f.Add("loss::,down:buffer:,crash::", ":::::", "ckpt:", -1)
	f.Add("lat:inf:9999999999,dup:nan", "1e308:9999999999999999999", "cold:-1", 3)
	f.Fuzz(func(t *testing.T, nfSpec, ackSpec, dsSpec string, computers int) {
		p := NetfaultParams{Netfault: nfSpec, AckTO: ackSpec, DState: dsSpec}
		cfg, err := p.Build(computers)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("empty error message from NetfaultParams.Build")
			}
			return
		}
		if cfg == nil {
			return // all knobs disabled
		}
		if !cfg.Enabled() {
			t.Fatalf("Build returned a disabled netfault config for %q %q %q (want nil)", nfSpec, ackSpec, dsSpec)
		}
		if verr := cfg.Validate(computers); verr != nil {
			t.Fatalf("Build accepted %q %q %q but Validate rejects: %v", nfSpec, ackSpec, dsSpec, verr)
		}
	})
}

// FuzzDriftSpecs throws arbitrary strings at the drift/estimator/replan
// flag grammar. The contract matches the other fuzzers: Build never
// panics, every rejection carries a message, and anything accepted
// passes the downstream validators for every plausible cluster size.
func FuzzDriftSpecs(f *testing.F) {
	f.Add("lstep:20000:2", "win:2048", "100:0.85:500", 4)
	f.Add("lramp:0:40000:3,sstep:10000:0.5:3,mis:-0.2:0.1", "ewma:0.05", "50:0.9:250:0.05:128", 4)
	f.Add("lcycle:86400:0.5,sstep:100:2", "", "500:0.8:500", 2)
	f.Add("", "", "", 1)
	f.Add("mis:-0.5", "win:1", "0:0:0", 0)
	f.Add("lstep::,lstep:1:2", "ewma:", ":::::", -1)
	f.Add("sstep:inf:nan:9999999999", "win:9999999999999999999", "1e308:-1:nan", 3)
	f.Fuzz(func(t *testing.T, driftSpec, estSpec, replanSpec string, computers int) {
		p := DriftParams{Drift: driftSpec, Replan: replanSpec, Estimator: estSpec}
		dc, ac, err := p.Build(computers)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("empty error message from DriftParams.Build")
			}
			return
		}
		if dc != nil {
			if verr := dc.Validate(computers); verr != nil {
				t.Fatalf("Build accepted drift %q but Validate rejects: %v", driftSpec, verr)
			}
			if !dc.Enabled() {
				t.Fatalf("Build returned a disabled drift config for %q (want nil)", driftSpec)
			}
		}
		if ac != nil {
			if verr := ac.Validate(); verr != nil {
				t.Fatalf("Build accepted replan %q / estimator %q but Validate rejects: %v",
					replanSpec, estSpec, verr)
			}
			if !ac.Enabled() {
				t.Fatalf("Build returned a disabled adapt config for %q (want nil)", replanSpec)
			}
		}
		if replanSpec == "" && ac != nil {
			t.Fatal("adapt config without a -replan spec")
		}
	})
}

// FuzzChaosSpecs throws arbitrary strings at the -chaos search-space
// grammar. The contract matches the other fuzzers: ParseChaosSpec never
// panics, empty input means no search (nil, nil), every rejection
// carries a message, and every accepted spec is internally sane — the
// generator trusts these bounds when it samples scenarios.
func FuzzChaosSpecs(f *testing.F) {
	f.Add("seeds:200")
	f.Add("seeds:50,intensity:1,dims:fail+over+drift+net,dur:20000,rho:0.7,speeds:1+1+2+10,seed:7")
	f.Add("dims:net,stall:5000,insys:100000")
	f.Add("dims:ctrl,seeds:5")
	f.Add("dims:net+ctrl,intensity:0.8")
	f.Add("")
	f.Add("seeds:0,intensity:0,dims:,dur:-1")
	f.Add("seeds:,intensity:,rho:nan,speeds:,seed:")
	f.Add("intensity:1e308,dur:inf,stall:9999999999999999999,insys:-1")
	f.Add("seeds:1,seeds:2")
	f.Fuzz(func(t *testing.T, spec string) {
		cs, err := ParseChaosSpec(spec)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("empty error message from ParseChaosSpec")
			}
			return
		}
		if cs == nil {
			if strings.TrimSpace(spec) != "" {
				t.Fatalf("ParseChaosSpec(%q) returned nil without error for non-empty input", spec)
			}
			return
		}
		if cs.Scenarios < 1 {
			t.Fatalf("accepted scenario count %d < 1 for %q", cs.Scenarios, spec)
		}
		if !(cs.Intensity > 0 && cs.Intensity <= 1) {
			t.Fatalf("accepted intensity %v outside (0, 1] for %q", cs.Intensity, spec)
		}
		if !(cs.Duration > 0) || math.IsInf(cs.Duration, 0) {
			t.Fatalf("accepted duration %v for %q", cs.Duration, spec)
		}
		if !cs.DimFaults && !cs.DimOverload && !cs.DimDrift && !cs.DimNet && !cs.DimCtrl {
			t.Fatalf("accepted spec %q with no dimensions", spec)
		}
		if cs.Rho < 0 || cs.Rho > MaxRho || math.IsNaN(cs.Rho) {
			t.Fatalf("accepted rho %v for %q", cs.Rho, spec)
		}
		for _, v := range cs.Speeds {
			if !(v > 0) || math.IsInf(v, 0) {
				t.Fatalf("accepted speed %v for %q", v, spec)
			}
		}
		if cs.Stall < 0 || math.IsNaN(cs.Stall) || cs.Stall > cs.Duration {
			t.Fatalf("accepted stall %v (duration %v) for %q", cs.Stall, cs.Duration, spec)
		}
		if cs.MaxInSystem < 0 {
			t.Fatalf("accepted in-system cap %d for %q", cs.MaxInSystem, spec)
		}
	})
}

// FuzzShardingSpecs throws arbitrary strings at the sharded-dispatch
// flag grammar (-dispatchers, -sync) and the policy mnemonics that
// consume it. The contract matches the other fuzzers: nothing panics,
// every rejection carries a message, and every accepted configuration is
// internally sane (K in range, finite non-negative sync period) and can
// parameterize the policy parser without laundering bad values through.
func FuzzShardingSpecs(f *testing.F) {
	f.Add("1", "never", "ORR")
	f.Add("4:rr", "100", "orr,wrr,jsq(2)")
	f.Add("16:hash", "0", "pod(3):alpha,jiq")
	f.Add("", "", "")
	f.Add("0", "-1", "LL")
	f.Add("4:mod", "nan", "jsq(0)")
	f.Add("99999999999999999999", "inf", "pod(2):fast")
	f.Add(":", ":", "jsq(")
	f.Add("4:hash", "0.0", "jsq(9)")   // "0" sync and d > fleet are rejections now
	f.Add("2", "never", "pod(12),jiq") // sample width beyond the 8-computer fleet
	f.Fuzz(func(t *testing.T, dispatchers, sync, policies string) {
		p, err := ParseShardingSpecs(dispatchers, sync)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("empty error message from ParseShardingSpecs")
			}
			return
		}
		if p.Dispatchers < 1 || p.Dispatchers > MaxDispatchers {
			t.Fatalf("accepted replica count %d for %q", p.Dispatchers, dispatchers)
		}
		if math.IsNaN(p.SyncEvery) || math.IsInf(p.SyncEvery, 0) || p.SyncEvery < 0 {
			t.Fatalf("accepted sync period %v for %q", p.SyncEvery, sync)
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("ParseShardingSpecs accepted %q %q but Validate rejects: %v", dispatchers, sync, verr)
		}
		opts := PolicyOptions{Computers: 8, Sharding: p}
		if _, _, perr := ParsePolicies(policies, opts); perr != nil && perr.Error() == "" {
			t.Fatal("empty error message from ParsePolicies under sharding")
		}
	})
}

// FuzzCtrlSpecs throws arbitrary strings at the control-plane flag
// grammar (-ctrl). The contract matches the other fuzzers: Build never
// panics, every rejection carries a message, and anything accepted
// passes ctrlplane.Config.Validate for the given cluster and replica
// counts and is actually enabled (never a non-nil inert config).
func FuzzCtrlSpecs(f *testing.F) {
	f.Add("loss:0.1,lat:5,lease:200,qto:50", 4, 1)
	f.Add("lat:2:0,dup:0.05,part:1000:2000:0+1,dpart:500:1500:1", 4, 4)
	f.Add("lease:100", 8, 2)
	f.Add("", 1, 1)
	f.Add("loss:1", 3, 1)
	f.Add("loss::,lease:,qto:", 0, 0)
	f.Add("lat:inf:9999999999,dup:nan,lease:-1,qto:0", -1, -1)
	f.Add("part:0:0,dpart:5:1", 2, 2)
	f.Fuzz(func(t *testing.T, spec string, computers, dispatchers int) {
		cfg, err := CtrlParams{Ctrl: spec}.Build(computers, dispatchers)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("empty error message from CtrlParams.Build")
			}
			return
		}
		if cfg == nil {
			return // no control plane
		}
		if !cfg.Enabled() {
			t.Fatalf("Build returned a disabled ctrl config for %q (want nil)", spec)
		}
		if verr := cfg.Validate(computers, dispatchers); verr != nil {
			t.Fatalf("Build accepted %q but Validate rejects: %v", spec, verr)
		}
	})
}
