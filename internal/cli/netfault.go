package cli

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"heterosched/internal/dist"
	"heterosched/internal/netfault"
)

// This file parses the network/control-plane fault flags shared by the
// front ends: -netfault, -ackto and -dstate. Like the drift parsers,
// every spec parser returns a clean error on malformed input (they are
// fuzzed in fuzz_test.go); nothing here panics.

// NetfaultParams are the raw network-fault flag values.
type NetfaultParams struct {
	// Netfault is a comma-separated fault item list:
	// loss:P[:LINK] | dup:P[:LINK] | lat:MEAN[:LINK] |
	// crash:MTBF:MTTR | down:drop|buffer[:CAP]|failover |
	// part:FROM:TO[:L1+L2+...]. Empty disables the layer.
	Netfault string
	// AckTO is "TO[:BUDGET[:BASE:MAX[:JITTER]]]": the ack timeout and
	// resubmission loop. Empty disables ack tracking (only valid on
	// loss-free networks).
	AckTO string
	// DState is "acks | ckpt:DT[:CLIENTTO] | cold[:RELEARN[:CLIENTTO]]":
	// the dispatcher state-recovery policy. Requires a crash item.
	DState string
}

// Build assembles the netfault configuration from the three flags and
// validates it against the cluster size. All-empty parameters return
// nil: no fault layer, bit-identical runs.
func (p NetfaultParams) Build(computers int) (*netfault.Config, error) {
	cfg, err := ParseNetfaultSpec(p.Netfault)
	if err != nil {
		return nil, fmt.Errorf("-netfault: %v", err)
	}
	ack, hasAck, err := ParseAckSpec(p.AckTO)
	if err != nil {
		return nil, fmt.Errorf("-ackto: %v", err)
	}
	ds, err := ParseDStateSpec(p.DState)
	if err != nil {
		return nil, fmt.Errorf("-dstate: %v", err)
	}
	if cfg == nil && !hasAck && ds == nil {
		return nil, nil
	}
	if cfg == nil {
		cfg = &netfault.Config{}
	}
	if hasAck {
		cfg.Ack = ack
	}
	if ds != nil {
		if cfg.Dispatcher == nil {
			return nil, fmt.Errorf("-dstate: requires a crash item in -netfault (state recovery applies to a crashing dispatcher)")
		}
		cfg.Dispatcher.Recovery = ds.Recovery
		if ds.CheckpointDT > 0 {
			cfg.Dispatcher.CheckpointDT = ds.CheckpointDT
		}
		if ds.RelearnT > 0 {
			cfg.Dispatcher.RelearnT = ds.RelearnT
		}
		if ds.ClientTO > 0 {
			cfg.Dispatcher.ClientTO = ds.ClientTO
		}
	}
	if err := cfg.Validate(computers); err != nil {
		return nil, err
	}
	return cfg, nil
}

// linkPatch is one link's partially-specified override; unset fields
// inherit the default link model.
type linkPatch struct {
	lat, loss, dup *float64
}

// ParseNetfaultSpec parses a comma-separated network-fault item list:
// link models (loss/dup/lat, with an optional per-link index), the
// dispatcher crash renewal (crash:MTBF:MTTR), the downtime arrival
// policy (down:...) and partition windows (part:...). Empty input
// returns nil (no faults).
func ParseNetfaultSpec(s string) (*netfault.Config, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	cfg := &netfault.Config{}
	patches := map[int]*linkPatch{}
	patchFor := func(idx int) *linkPatch {
		p := patches[idx]
		if p == nil {
			p = &linkPatch{}
			patches[idx] = p
		}
		return p
	}
	haveDown := false
	haveDefault := map[string]bool{}
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		kind, rest, _ := strings.Cut(item, ":")
		kind = strings.TrimSpace(kind)
		parts := []string{}
		if rest != "" {
			parts = strings.Split(rest, ":")
		}
		num := func(i int, what string) (float64, error) {
			v, err := strconv.ParseFloat(strings.TrimSpace(parts[i]), 64)
			if err != nil {
				return 0, fmt.Errorf("bad %s %q: %v", what, parts[i], err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("%s %v must be finite", what, v)
			}
			return v, nil
		}
		linkIdx := func(i int) (int, error) {
			idx, err := strconv.Atoi(strings.TrimSpace(parts[i]))
			if err != nil {
				return 0, fmt.Errorf("bad link index %q: %v", parts[i], err)
			}
			if idx < 0 {
				return 0, fmt.Errorf("link index %d must be >= 0 (omit for all links)", idx)
			}
			return idx, nil
		}
		switch kind {
		case "loss", "dup", "lat":
			if len(parts) != 1 && len(parts) != 2 {
				return nil, fmt.Errorf("bad spec %q (want %s:VALUE[:LINK])", item, kind)
			}
			v, err := num(0, kind+" value")
			if err != nil {
				return nil, err
			}
			if kind == "lat" && v < 0 {
				return nil, fmt.Errorf("latency mean %g is negative", v)
			}
			if kind != "lat" && (v < 0 || v > 1) {
				return nil, fmt.Errorf("%s probability %g outside [0, 1]", kind, v)
			}
			if len(parts) == 2 {
				idx, err := linkIdx(1)
				if err != nil {
					return nil, err
				}
				p := patchFor(idx)
				var field **float64
				switch kind {
				case "loss":
					field = &p.loss
				case "dup":
					field = &p.dup
				default:
					field = &p.lat
				}
				if *field != nil {
					return nil, fmt.Errorf("duplicate %s item for link %d", kind, idx)
				}
				vv := v
				*field = &vv
				break
			}
			if haveDefault[kind] {
				return nil, fmt.Errorf("duplicate default %s item %q", kind, item)
			}
			haveDefault[kind] = true
			switch kind {
			case "loss":
				cfg.Link.Loss = v
			case "dup":
				cfg.Link.Dup = v
			default:
				if v > 0 {
					cfg.Link.Latency = dist.Exponential{MeanVal: v}
				}
			}
		case "crash":
			if cfg.Dispatcher != nil && cfg.Dispatcher.Uptime != nil {
				return nil, fmt.Errorf("duplicate crash item %q", item)
			}
			if len(parts) != 2 {
				return nil, fmt.Errorf("bad spec %q (want crash:MTBF:MTTR)", item)
			}
			mtbf, err := num(0, "crash MTBF")
			if err != nil {
				return nil, err
			}
			mttr, err := num(1, "crash MTTR")
			if err != nil {
				return nil, err
			}
			if mtbf <= 0 || mttr <= 0 {
				return nil, fmt.Errorf("crash MTBF %g and MTTR %g must be positive", mtbf, mttr)
			}
			// A down item earlier in the list may already have created the
			// dispatcher; fill in the renewal process either way.
			if cfg.Dispatcher == nil {
				cfg.Dispatcher = &netfault.Dispatcher{}
			}
			cfg.Dispatcher.Uptime = dist.Exponential{MeanVal: mtbf}
			cfg.Dispatcher.Downtime = dist.Exponential{MeanVal: mttr}
		case "down":
			if haveDown {
				return nil, fmt.Errorf("duplicate down item %q", item)
			}
			haveDown = true
			if len(parts) < 1 || len(parts) > 2 {
				return nil, fmt.Errorf("bad spec %q (want down:drop, down:buffer[:CAP] or down:failover)", item)
			}
			pol, err := netfault.ParseDownPolicy(strings.TrimSpace(parts[0]))
			if err != nil {
				return nil, err
			}
			cap := 0
			if len(parts) == 2 {
				if pol != netfault.DownBuffer {
					return nil, fmt.Errorf("down policy %v takes no capacity (only buffer does)", pol)
				}
				if cap, err = strconv.Atoi(strings.TrimSpace(parts[1])); err != nil {
					return nil, fmt.Errorf("bad buffer capacity %q: %v", parts[1], err)
				}
				if cap < 1 {
					return nil, fmt.Errorf("buffer capacity %d must be at least 1", cap)
				}
			}
			// The crash item may come later in the list; the placeholder
			// dispatcher it creates is checked for after the loop.
			if cfg.Dispatcher == nil {
				cfg.Dispatcher = &netfault.Dispatcher{}
			}
			cfg.Dispatcher.Down = pol
			cfg.Dispatcher.BufferCap = cap
		case "part":
			if len(parts) != 2 && len(parts) != 3 {
				return nil, fmt.Errorf("bad spec %q (want part:FROM:TO[:L1+L2+...])", item)
			}
			from, err := num(0, "partition start")
			if err != nil {
				return nil, err
			}
			to, err := num(1, "partition end")
			if err != nil {
				return nil, err
			}
			p := netfault.Partition{From: from, To: to}
			if len(parts) == 3 {
				for _, tok := range strings.Split(parts[2], "+") {
					tok = strings.TrimSpace(tok)
					if tok == "" {
						return nil, fmt.Errorf("bad spec %q: empty link in list", item)
					}
					idx, err := strconv.Atoi(tok)
					if err != nil {
						return nil, fmt.Errorf("bad partition link %q: %v", tok, err)
					}
					if idx < 0 {
						return nil, fmt.Errorf("partition link %d must be >= 0", idx)
					}
					p.Links = append(p.Links, idx)
				}
			}
			cfg.Partitions = append(cfg.Partitions, p)
		default:
			return nil, fmt.Errorf("unknown netfault spec %q (want loss:P[:LINK], dup:P[:LINK], lat:MEAN[:LINK], crash:MTBF:MTTR, down:..., or part:FROM:TO[:L1+L2+...])", item)
		}
	}
	// A down item without a crash item configures a dispatcher that never
	// crashes — reject it as almost certainly a mistake.
	if cfg.Dispatcher != nil && cfg.Dispatcher.Uptime == nil {
		return nil, fmt.Errorf("down item requires a crash:MTBF:MTTR item")
	}
	// Materialize the per-link patches over the default link model.
	if len(patches) > 0 {
		cfg.PerLink = make(map[int]netfault.Link, len(patches))
		for idx, p := range patches {
			l := cfg.Link
			if p.lat != nil {
				if *p.lat < 0 {
					return nil, fmt.Errorf("link %d latency mean %g is negative", idx, *p.lat)
				}
				if *p.lat > 0 {
					l.Latency = dist.Exponential{MeanVal: *p.lat}
				} else {
					l.Latency = nil
				}
			}
			if p.loss != nil {
				l.Loss = *p.loss
			}
			if p.dup != nil {
				l.Dup = *p.dup
			}
			cfg.PerLink[idx] = l
		}
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	return cfg, nil
}

// ParseAckSpec parses "TO[:BUDGET[:BASE:MAX[:JITTER]]]". Empty returns
// hasSpec false (ack tracking disabled).
func ParseAckSpec(s string) (ack netfault.Ack, hasSpec bool, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return netfault.Ack{}, false, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 1 && len(parts) != 2 && len(parts) != 4 && len(parts) != 5 {
		return ack, false, fmt.Errorf("bad ack spec %q (want TO[:BUDGET[:BASE:MAX[:JITTER]]])", s)
	}
	num := func(i int, what string) (float64, error) {
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[i]), 64)
		if err != nil {
			return 0, fmt.Errorf("bad %s %q: %v", what, parts[i], err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("%s %v must be finite", what, v)
		}
		return v, nil
	}
	if ack.Timeout, err = num(0, "ack timeout"); err != nil {
		return ack, false, err
	}
	if !(ack.Timeout > 0) {
		return ack, false, fmt.Errorf("ack timeout %v must be positive", ack.Timeout)
	}
	if len(parts) >= 2 {
		budget, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return ack, false, fmt.Errorf("bad resubmission budget %q: %v", parts[1], err)
		}
		ack.Budget = budget
	}
	if len(parts) >= 4 {
		if ack.BackoffBase, err = num(2, "backoff base"); err != nil {
			return ack, false, err
		}
		if ack.BackoffMax, err = num(3, "backoff max"); err != nil {
			return ack, false, err
		}
	}
	if len(parts) == 5 {
		if ack.Jitter, err = num(4, "backoff jitter"); err != nil {
			return ack, false, err
		}
	}
	return ack, true, nil
}

// DStateSpec is a parsed -dstate value: the recovery policy plus its
// optional timing knobs (zeros mean the netfault defaults).
type DStateSpec struct {
	Recovery     netfault.Recovery
	CheckpointDT float64
	RelearnT     float64
	ClientTO     float64
}

// ParseDStateSpec parses "acks", "ckpt:DT[:CLIENTTO]" or
// "cold[:RELEARN[:CLIENTTO]]". Empty returns nil (keep the dispatcher's
// default recovery, which is acks).
func ParseDStateSpec(s string) (*DStateSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	kind, rest, _ := strings.Cut(s, ":")
	kind = strings.TrimSpace(kind)
	parts := []string{}
	if rest != "" {
		parts = strings.Split(rest, ":")
	}
	num := func(i int, what string) (float64, error) {
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[i]), 64)
		if err != nil {
			return 0, fmt.Errorf("bad %s %q: %v", what, parts[i], err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return 0, fmt.Errorf("%s %v must be positive and finite", what, v)
		}
		return v, nil
	}
	ds := &DStateSpec{}
	var err error
	switch kind {
	case "acks":
		if len(parts) != 0 {
			return nil, fmt.Errorf("bad dstate spec %q (acks takes no arguments)", s)
		}
		ds.Recovery = netfault.RecoverAcks
	case "ckpt", "checkpoint":
		if len(parts) != 1 && len(parts) != 2 {
			return nil, fmt.Errorf("bad dstate spec %q (want ckpt:DT[:CLIENTTO])", s)
		}
		ds.Recovery = netfault.RecoverCheckpoint
		if ds.CheckpointDT, err = num(0, "checkpoint period"); err != nil {
			return nil, err
		}
		if len(parts) == 2 {
			if ds.ClientTO, err = num(1, "client timeout"); err != nil {
				return nil, err
			}
		}
	case "cold":
		if len(parts) > 2 {
			return nil, fmt.Errorf("bad dstate spec %q (want cold[:RELEARN[:CLIENTTO]])", s)
		}
		ds.Recovery = netfault.RecoverCold
		if len(parts) >= 1 {
			if ds.RelearnT, err = num(0, "relearn window"); err != nil {
				return nil, err
			}
		}
		if len(parts) == 2 {
			if ds.ClientTO, err = num(1, "client timeout"); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("unknown dstate spec %q (want acks, ckpt:DT[:CLIENTTO] or cold[:RELEARN[:CLIENTTO]])", s)
	}
	return ds, nil
}
