package plot

import (
	"bytes"
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func render(t *testing.T, c *Chart) string {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestWriteSVGWellFormed(t *testing.T) {
	c := &Chart{
		Title:  "Figure 3(b) — mean response ratio",
		XLabel: "fast speed",
		YLabel: "mean response ratio",
		Series: []Series{
			{Name: "WRAN", X: []float64{1, 10, 20}, Y: []float64{3.6, 1.8, 1.2}},
			{Name: "ORR", X: []float64{1, 10, 20}, Y: []float64{3.0, 1.1, 0.53}},
		},
	}
	out := render(t, c)
	// Must parse as XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
	for _, want := range []string{"<svg", "polyline", "WRAN", "ORR", "fast speed", "Figure 3(b)"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// One polyline per series.
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("found %d polylines, want 2", got)
	}
}

func TestWriteSVGErrors(t *testing.T) {
	cases := []*Chart{
		{},
		{Series: []Series{{Name: "a", X: []float64{1}, Y: nil}}},
		{Series: []Series{{Name: "a"}}},
		{Series: []Series{{Name: "a", X: []float64{1}, Y: []float64{math.NaN()}}}},
		{LogY: true, Series: []Series{{Name: "a", X: []float64{1, 2}, Y: []float64{1, -1}}}},
	}
	for i, c := range cases {
		if err := c.WriteSVG(&bytes.Buffer{}); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestWriteSVGLogScale(t *testing.T) {
	c := &Chart{
		LogY: true,
		Series: []Series{
			{Name: "s", X: []float64{1, 2, 3}, Y: []float64{0.1, 10, 1000}},
		},
	}
	out := render(t, c)
	if !strings.Contains(out, "<svg") {
		t.Fatal("no svg output")
	}
}

func TestWriteSVGSinglePointSeries(t *testing.T) {
	c := &Chart{
		Series: []Series{{Name: "p", X: []float64{5}, Y: []float64{7}}},
	}
	out := render(t, c)
	if !strings.Contains(out, "circle") {
		t.Error("single point should render a marker")
	}
}

func TestEscape(t *testing.T) {
	c := &Chart{
		Title:  `a<b & "c"`,
		Series: []Series{{Name: "x>y", X: []float64{0, 1}, Y: []float64{0, 1}}},
	}
	out := render(t, c)
	if strings.Contains(out, "a<b &") {
		t.Error("special characters not escaped")
	}
	if !strings.Contains(out, "a&lt;b &amp;") {
		t.Error("escaped title missing")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 10, 6)
	if len(ticks) < 3 || len(ticks) > 12 {
		t.Errorf("ticks(0,10) = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Errorf("ticks not increasing: %v", ticks)
		}
	}
	if ticks[0] < 0 || ticks[len(ticks)-1] > 10.001 {
		t.Errorf("ticks exceed range: %v", ticks)
	}
	if got := niceTicks(5, 5, 4); len(got) != 1 {
		t.Errorf("degenerate range ticks = %v", got)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.5:     "0.5",
		2:       "2",
		150:     "150",
		2.5e7:   "2e+07", // 2.5e7 rounds to 2e+07? No—%.0e of 2.5e7 is 3e+07. Fixed below.
		0.00025: "2e-04", // similar; validated loosely below
	}
	_ = cases
	if formatTick(0) != "0" {
		t.Error("0 format")
	}
	if formatTick(150) != "150" {
		t.Errorf("150 → %q", formatTick(150))
	}
	if formatTick(0.5) != "0.5" {
		t.Errorf("0.5 → %q", formatTick(0.5))
	}
	if !strings.Contains(formatTick(2.5e7), "e+07") {
		t.Errorf("2.5e7 → %q", formatTick(2.5e7))
	}
}

func TestDefaultDimensions(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}}}}
	out := render(t, c)
	if !strings.Contains(out, `width="640" height="420"`) {
		t.Error("default dimensions not applied")
	}
	c.Width, c.Height = 800, 600
	out = render(t, c)
	if !strings.Contains(out, `width="800" height="600"`) {
		t.Error("explicit dimensions not applied")
	}
}

func TestFlatSeries(t *testing.T) {
	// All-equal Y values must not divide by zero.
	c := &Chart{Series: []Series{{Name: "flat", X: []float64{0, 1, 2}, Y: []float64{3, 3, 3}}}}
	out := render(t, c)
	if strings.Contains(out, "NaN") {
		t.Error("flat series produced NaN coordinates")
	}
}
