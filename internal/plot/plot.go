// Package plot renders line charts as standalone SVG documents using only
// the standard library, so the experiment harness can regenerate the
// paper's figures as figures (cmd/experiments -svg).
//
// The feature set is deliberately small: multiple named series, linear or
// log-10 Y axis, automatic "nice number" ticks, a legend, and axis labels.
package plot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named polyline.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a single-panel line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// LogY draws the Y axis in log-10 scale; all Y values must be
	// positive.
	LogY bool
	// Width and Height are the SVG dimensions in pixels; zero means
	// 640×420.
	Width, Height int
}

// palette holds the series stroke colors (colorblind-safe Okabe-Ito).
var palette = []string{
	"#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#000000", "#F0E442",
}

// markers are per-series point marker shapes, cycled with the palette.
const pointRadius = 3.0

// WriteSVG renders the chart. It returns an error for empty or
// inconsistent series, or non-positive Y values with LogY.
func (c *Chart) WriteSVG(w io.Writer) error {
	if len(c.Series) == 0 {
		return errors.New("plot: chart has no series")
	}
	width, height := c.Width, c.Height
	if width == 0 {
		width = 640
	}
	if height == 0 {
		height = 420
	}

	// Data extent.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return fmt.Errorf("plot: series %q is empty", s.Name)
		}
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				return fmt.Errorf("plot: series %q has non-finite point (%v, %v)", s.Name, x, y)
			}
			if c.LogY && y <= 0 {
				return fmt.Errorf("plot: series %q has non-positive y %v with LogY", s.Name, y)
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	if minY == maxY {
		minY, maxY = minY-1, maxY+1
		if c.LogY && minY <= 0 {
			minY = maxY / 10
		}
	}

	// Transform helpers.
	const marginL, marginR, marginT, marginB = 70.0, 160.0, 40.0, 50.0
	plotW := float64(width) - marginL - marginR
	plotH := float64(height) - marginT - marginB
	yVal := func(y float64) float64 {
		if c.LogY {
			return math.Log10(y)
		}
		return y
	}
	yLo, yHi := yVal(minY), yVal(maxY)
	// Pad the y range slightly so extreme points don't sit on the frame.
	pad := 0.05 * (yHi - yLo)
	yLo -= pad
	yHi += pad
	px := func(x float64) float64 { return marginL + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return marginT + plotH - (yVal(y)-yLo)/(yHi-yLo)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%g" y="24" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`+"\n",
			marginL+plotW/2, escape(c.Title))
	}

	// Frame.
	fmt.Fprintf(&b, `<rect x="%g" y="%g" width="%g" height="%g" fill="none" stroke="#333"/>`+"\n",
		marginL, marginT, plotW, plotH)

	// X ticks.
	for _, t := range niceTicks(minX, maxX, 6) {
		x := px(t)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#333"/>`+"\n",
			x, marginT+plotH, x, marginT+plotH+5)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, marginT+plotH+18, formatTick(t))
	}
	// Y ticks.
	var yTicks []float64
	if c.LogY {
		for e := math.Floor(yLo); e <= math.Ceil(yHi); e++ {
			if e >= yLo && e <= yHi {
				yTicks = append(yTicks, math.Pow(10, e))
			}
		}
		if len(yTicks) < 2 { // narrow range: fall back to linear ticks
			yTicks = niceTicks(minY, maxY, 5)
		}
	} else {
		yTicks = niceTicks(math.Min(minY, maxY), math.Max(minY, maxY), 6)
	}
	for _, t := range yTicks {
		if yVal(t) < yLo || yVal(t) > yHi {
			continue
		}
		y := py(t)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#333"/>`+"\n",
			marginL-5, y, marginL, y)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n",
			marginL, y, marginL+plotW, y)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-8, y+4, formatTick(t))
	}

	// Axis labels.
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
			marginL+plotW/2, float64(height)-12, escape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
			marginT+plotH/2, marginT+plotH/2, escape(c.YLabel))
	}

	// Series.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		var pts []string
		for k := range s.X {
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", px(s.X[k]), py(s.Y[k])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
			strings.Join(pts, " "), color)
		for k := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="%g" fill="%s"/>`+"\n",
				px(s.X[k]), py(s.Y[k]), pointRadius, color)
		}
		// Legend entry.
		ly := marginT + 10 + float64(i)*18
		lx := marginL + plotW + 14
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="1.8"/>`+"\n",
			lx, ly, lx+22, ly, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+28, ly+4, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// escape replaces XML-special characters in text content.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// niceTicks returns ~n human-friendly tick values covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	span := hi - lo
	if span <= 0 {
		return []float64{lo}
	}
	step := math.Pow(10, math.Floor(math.Log10(span/float64(n))))
	for _, m := range []float64{1, 2, 5, 10, 20, 50} {
		if span/(step*m) <= float64(n) {
			step *= m
			break
		}
	}
	start := math.Ceil(lo/step) * step
	var ticks []float64
	for t := start; t <= hi+1e-9*span; t += step {
		ticks = append(ticks, t)
	}
	return ticks
}

// formatTick renders a tick value compactly.
func formatTick(t float64) string {
	a := math.Abs(t)
	switch {
	case t == 0:
		return "0"
	case a >= 1e6 || a < 1e-3:
		return fmt.Sprintf("%.0e", t)
	case a >= 100:
		return fmt.Sprintf("%.0f", t)
	case a >= 1:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", t), "0"), ".")
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", t), "0"), ".")
	}
}
