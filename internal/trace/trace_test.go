package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"heterosched/internal/cluster"
	"heterosched/internal/dist"
	"heterosched/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []Record{
		{ID: 1, Target: 0, Arrival: 0.5, Size: 2, Completion: 3.5, Outcome: "completed"},
		{ID: 2, Target: 3, Arrival: 1.25, Size: 0.125, Completion: 10, Outcome: "late", Retries: 2},
		{ID: 3, Target: 1, Arrival: 2, Size: 4, Outcome: "deadline-killed", Retries: 1},
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestWriterFromJob(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	j := &sim.Job{ID: 7, Target: 2, Arrival: 10, Size: 3, Completion: 19}
	if err := w.Record(j); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 7 || got[0].ResponseTime() != 9 || got[0].ResponseRatio() != 3 {
		t.Errorf("record = %+v", got)
	}
}

func TestReaderWithoutHeader(t *testing.T) {
	// Headerless data (e.g. concatenated shards) still parses.
	in := "5,1,0,2,4,completed,0\n"
	got, err := NewReader(strings.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 5 {
		t.Errorf("records = %+v", got)
	}
}

func TestReaderLegacyFormat(t *testing.T) {
	// A trace written before the outcome/retries columns — five-column
	// header and rows — reads back as completed jobs with zero retries.
	in := "id,target,arrival,size,completion\n" +
		"1,0,0.5,2,3.5\n" +
		"2,1,1,4,9\n"
	got, err := NewReader(strings.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records, want 2", len(got))
	}
	for i, rec := range got {
		if rec.Outcome != "completed" || rec.Retries != 0 {
			t.Errorf("record %d = %+v, want completed outcome and zero retries", i, rec)
		}
	}
	// Legacy and current rows may even be mixed (concatenated shards).
	mixed := "1,0,0.5,2,3.5\n2,1,1,4,0,shed,3\n"
	got, err = NewReader(strings.NewReader(mixed)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Outcome != "completed" || got[1].Outcome != "shed" || got[1].Retries != 3 {
		t.Errorf("mixed records = %+v", got)
	}
}

func TestRoundTripResubmits(t *testing.T) {
	// The resubmits column (network-layer resubmissions) round-trips, and
	// the intermediate seven-column format — outcome and retries but no
	// resubmits — reads back with zero resubmits.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []Record{
		{ID: 1, Target: 0, Arrival: 0.5, Size: 2, Completion: 3.5, Outcome: "completed", Resubmits: 3},
		{ID: 2, Target: 3, Arrival: 1.25, Size: 0.5, Outcome: "net-lost", Retries: 1, Resubmits: 4},
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}

	// Seven-column rows (pre-resubmits) and current rows can be mixed.
	mixed := "id,target,arrival,size,completion,outcome,retries\n" +
		"1,0,0.5,2,3.5,late,2\n" +
		"2,1,1,4,9,completed,0,5\n"
	got, err = NewReader(strings.NewReader(mixed)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Resubmits != 0 || got[0].Retries != 2 || got[1].Resubmits != 5 {
		t.Errorf("mixed records = %+v", got)
	}
}

func TestReaderBadRows(t *testing.T) {
	cases := []string{
		"x,1,0,2,4\n",
		"1,x,0,2,4\n",
		"1,1,x,2,4\n",
		"1,1,0,x,4\n",
		"1,1,0,2,x\n",
		"1,1,0,2,4,bogus-outcome,0\n",
		"1,1,0,2,4,completed,x\n",
		"1,1,0,2,4,completed,0,x\n", // bad resubmits
		"1,1,0,2,4,completed\n",     // six columns: no known format
	}
	for _, in := range cases {
		if _, err := NewReader(strings.NewReader(in)).Next(); err == nil {
			t.Errorf("row %q accepted", strings.TrimSpace(in))
		}
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestSummarize(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	// Two jobs: ratios 2 and 4 → mean 3, pop sd 1.
	if err := w.Append(Record{ID: 1, Target: 0, Arrival: 0, Size: 1, Completion: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{ID: 2, Target: 1, Arrival: 0, Size: 2, Completion: 8}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if s.Jobs != 2 {
		t.Errorf("jobs = %d", s.Jobs)
	}
	if math.Abs(s.MeanResponseRatio-3) > 1e-12 {
		t.Errorf("mean ratio = %v", s.MeanResponseRatio)
	}
	if math.Abs(s.Fairness-1) > 1e-12 {
		t.Errorf("fairness = %v", s.Fairness)
	}
	if s.PerTarget[0] != 1 || s.PerTarget[1] != 1 {
		t.Errorf("per-target = %v", s.PerTarget)
	}
}

// End to end: record a cluster run's trace, then verify the trace summary
// matches the run's own metrics.
func TestTraceMatchesClusterMetrics(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	cfg := cluster.Config{
		Speeds:              []float64{1, 2},
		Utilization:         0.5,
		JobSize:             dist.NewExponential(1.0),
		ExponentialArrivals: true,
		Duration:            20000,
		Seed:                4,
		OnDeparture:         func(j *sim.Job) { _ = w.Record(j) },
	}
	res, err := cluster.Run(cfg, &alternator{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if s.Jobs != res.Jobs {
		t.Errorf("trace has %d jobs, run reports %d", s.Jobs, res.Jobs)
	}
	if math.Abs(s.MeanResponseTime-res.MeanResponseTime) > 1e-9 {
		t.Errorf("trace mean %v vs run mean %v", s.MeanResponseTime, res.MeanResponseTime)
	}
	if math.Abs(s.Fairness-res.Fairness) > 1e-9 {
		t.Errorf("trace fairness %v vs run %v", s.Fairness, res.Fairness)
	}
}

// End to end through the terminal-outcome hook: every generated job —
// completed or shed — lands in the trace exactly once, with its outcome.
func TestOnFinalTraceCoversAllFates(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	cfg := cluster.Config{
		Speeds:              []float64{1, 1},
		Utilization:         1.5, // overloaded: bounded queues must shed
		JobSize:             dist.NewExponential(1.0),
		ExponentialArrivals: true,
		Duration:            5000,
		WarmupFraction:      -1,
		Seed:                9,
		Overload:            &cluster.OverloadConfig{QueueCap: 3},
		OnFinal: func(j *sim.Job, o cluster.Outcome) {
			if err := w.RecordFinal(j, o); err != nil {
				t.Fatal(err)
			}
		},
	}
	res, err := cluster.Run(cfg, &alternator{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	records, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(records)) != res.GeneratedJobs {
		t.Errorf("trace has %d records, run generated %d jobs", len(records), res.GeneratedJobs)
	}
	seen := map[int64]bool{}
	byOutcome := map[string]int64{}
	for _, rec := range records {
		if seen[rec.ID] {
			t.Fatalf("job %d recorded twice", rec.ID)
		}
		seen[rec.ID] = true
		byOutcome[rec.Outcome]++
	}
	if byOutcome["completed"] == 0 || byOutcome["shed"] == 0 {
		t.Errorf("outcome mix %v, want both completions and sheds", byOutcome)
	}
	if byOutcome["completed"] != res.Jobs {
		t.Errorf("trace has %d completions, run counted %d", byOutcome["completed"], res.Jobs)
	}
	if byOutcome["shed"] != res.Overload.ShedOverflow {
		t.Errorf("trace has %d sheds, run counted %d", byOutcome["shed"], res.Overload.ShedOverflow)
	}
}

type alternator struct{ next int }

func (a *alternator) Name() string                { return "alt" }
func (a *alternator) Init(*cluster.Context) error { return nil }
func (a *alternator) Select(*sim.Job) int {
	a.next = 1 - a.next
	return a.next
}
func (a *alternator) Departed(*sim.Job) {}

func TestReplayRoundTrip(t *testing.T) {
	// Record a run's trace, replay it under the same policy, and verify
	// identical aggregate behavior (the same arrivals produce the same
	// schedule and completions for a deterministic policy).
	var buf bytes.Buffer
	w := NewWriter(&buf)
	cfg := cluster.Config{
		Speeds:              []float64{1, 2},
		Utilization:         0.5,
		JobSize:             dist.NewExponential(1.0),
		ExponentialArrivals: true,
		Duration:            10000,
		WarmupFraction:      -1,
		Seed:                6,
		OnDeparture:         func(j *sim.Job) { _ = w.Record(j) },
	}
	orig, err := cluster.Run(cfg, &alternator{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	records, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	SortByArrival(records)

	replayCfg := cluster.Config{
		Speeds:         []float64{1, 2},
		Utilization:    0.5,
		Duration:       10000,
		WarmupFraction: -1,
		Replay:         Replay(records),
	}
	rerun, err := cluster.Run(replayCfg, &alternator{})
	if err != nil {
		t.Fatal(err)
	}
	if rerun.Jobs != orig.Jobs {
		t.Errorf("replay completed %d jobs, original %d", rerun.Jobs, orig.Jobs)
	}
	if math.Abs(rerun.MeanResponseTime-orig.MeanResponseTime) > 1e-9 {
		t.Errorf("replay mean response %v, original %v", rerun.MeanResponseTime, orig.MeanResponseTime)
	}
	if math.Abs(rerun.Fairness-orig.Fairness) > 1e-9 {
		t.Errorf("replay fairness %v, original %v", rerun.Fairness, orig.Fairness)
	}
}

func TestReplayDifferentPolicy(t *testing.T) {
	// The point of replay: evaluate a different policy on the exact same
	// workload. Send everything to the fast machine vs alternating.
	records := []Record{}
	for i := 0; i < 200; i++ {
		records = append(records, Record{ID: int64(i + 1), Arrival: float64(i) * 5, Size: 2})
	}
	replayCfg := cluster.Config{
		Speeds:         []float64{1, 4},
		Utilization:    0.3,
		WarmupFraction: -1,
		Replay:         Replay(records),
	}
	alt, err := cluster.Run(replayCfg, &alternator{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := cluster.Run(replayCfg, &toFastest{})
	if err != nil {
		t.Fatal(err)
	}
	if alt.Jobs != fast.Jobs {
		t.Fatalf("job counts differ: %d vs %d", alt.Jobs, fast.Jobs)
	}
	// Widely spaced size-2 jobs: on the speed-4 machine each takes 0.5 s;
	// alternating, half take 2 s. The fast-only policy must win.
	if fast.MeanResponseTime >= alt.MeanResponseTime {
		t.Errorf("fast-only %v not below alternating %v", fast.MeanResponseTime, alt.MeanResponseTime)
	}
}

type toFastest struct{}

func (*toFastest) Name() string                { return "fastest" }
func (*toFastest) Init(*cluster.Context) error { return nil }
func (*toFastest) Select(*sim.Job) int         { return 1 }
func (*toFastest) Departed(*sim.Job)           {}

func TestReplayValidation(t *testing.T) {
	base := cluster.Config{
		Speeds:      []float64{1},
		Utilization: 0.5,
	}
	bad := base
	bad.Replay = []cluster.ReplayJob{{Arrival: 10, Size: 1}, {Arrival: 5, Size: 1}}
	if _, err := cluster.Run(bad, &toFastest{}); err == nil {
		t.Error("unsorted replay accepted")
	}
	bad2 := base
	bad2.Replay = []cluster.ReplayJob{{Arrival: 1, Size: 0}}
	if _, err := cluster.Run(bad2, &toFastest{}); err == nil {
		t.Error("zero-size replay job accepted")
	}
}

// TestTraceFormatVersions is the table test over every historical
// column width: each format is a strict prefix of the canonical header,
// parses through the single versioned path, and absent fields take
// their documented defaults.
func TestTraceFormatVersions(t *testing.T) {
	cases := []struct {
		name string
		row  string
		want Record
	}{
		{
			name: "v0 five columns (original)",
			row:  "1,2,0.5,4,9.5",
			want: Record{ID: 1, Target: 2, Arrival: 0.5, Size: 4, Completion: 9.5, Outcome: "completed"},
		},
		{
			name: "v1 seven columns (outcome, retries)",
			row:  "2,0,1,2,0,shed,3",
			want: Record{ID: 2, Arrival: 1, Size: 2, Outcome: "shed", Retries: 3},
		},
		{
			name: "v2 eight columns (resubmits)",
			row:  "3,1,1,2,8,late,1,4",
			want: Record{ID: 3, Target: 1, Arrival: 1, Size: 2, Completion: 8, Outcome: "late", Retries: 1, Resubmits: 4},
		},
		{
			name: "v3 twelve columns (span decomposition)",
			row:  "4,3,2,1,12,completed,0,1,5.5,2.5,1.25,0.75",
			want: Record{ID: 4, Target: 3, Arrival: 2, Size: 1, Completion: 12, Outcome: "completed",
				Resubmits: 1, Queue: 5.5, Service: 2.5, Net: 1.25, Retry: 0.75},
		},
	}
	for _, tc := range cases {
		got, err := NewReader(strings.NewReader(tc.row + "\n")).Next()
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: parsed %+v, want %+v", tc.name, got, tc.want)
		}
	}
	// Widths between the registered versions are rejected, and bad
	// component floats in the new columns are caught.
	for _, bad := range []string{
		"1,1,0,2,4,completed,0,0,1\n",          // 9 columns: no such version
		"1,1,0,2,4,completed,0,0,1,1,1\n",      // 11 columns: no such version
		"1,1,0,2,4,completed,0,0,x,1,1,1\n",    // bad queue
		"1,1,0,2,4,completed,0,0,1,1,1,nope\n", // bad retry
	} {
		if _, err := NewReader(strings.NewReader(bad)).Next(); err == nil {
			t.Errorf("row %q accepted", strings.TrimSpace(bad))
		}
	}
}

// TestRecordFinalComponents checks the component-carrying writer used
// by instrumented runs: components round-trip, and the plain RecordFinal
// writes zero components.
func TestRecordFinalComponents(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	j := &sim.Job{ID: 9, Target: 2, Arrival: 1, Size: 3, Completion: 11}
	if err := w.RecordFinalComponents(j, cluster.OutcomeCompleted, 6, 3, 0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := w.RecordFinal(j, cluster.OutcomeCompleted); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records, want 2", len(got))
	}
	if got[0].Queue != 6 || got[0].Service != 3 || got[0].Net != 0.5 || got[0].Retry != 0.5 {
		t.Errorf("components = %+v", got[0])
	}
	if got[1].Queue != 0 || got[1].Service != 0 || got[1].Net != 0 || got[1].Retry != 0 {
		t.Errorf("RecordFinal wrote nonzero components: %+v", got[1])
	}
}
