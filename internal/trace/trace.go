// Package trace records and reads per-job simulation traces. A trace is a
// CSV stream with one row per finished job — id, target computer, arrival
// time, size, completion time, terminal outcome, retry count — enabling
// offline analysis (response-time distributions, per-computer breakdowns)
// and regression comparison between runs.
//
// Wire a Writer into a simulation through cluster.Config.OnFinal, which
// fires for every terminal outcome (kills, sheds and drops included), not
// just completions:
//
//	w := trace.NewWriter(f)
//	cfg.OnFinal = func(j *sim.Job, o cluster.Outcome) { _ = w.RecordFinal(j, o) }
//	... run ...
//	err := w.Flush()
//
// The Reader also accepts the legacy five-column format (no outcome or
// retries columns; rows read back as outcome "completed" with zero
// retries) and the intermediate seven-column format (no resubmits
// column; rows read back with zero resubmits).
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"

	"heterosched/internal/cluster"
	"heterosched/internal/sim"
	"heterosched/internal/stats"
)

// header is the CSV column layout, written once per trace. The first
// legacyColumns columns match the original format; outcome and retries
// were appended later, and resubmits (network-layer resubmissions) after
// that. The Reader accepts all three layouts.
var header = []string{"id", "target", "arrival", "size", "completion", "outcome", "retries", "resubmits"}

// legacyColumns is the column count of the original trace format;
// retryColumns the width of the intermediate format that added outcome
// and retries but predated the resubmits column.
const (
	legacyColumns = 5
	retryColumns  = 7
)

// Record is one finished job.
type Record struct {
	ID         int64
	Target     int
	Arrival    float64
	Size       float64
	Completion float64
	// Outcome is the terminal outcome's wire name (cluster.Outcome); a
	// legacy trace reads back as "completed".
	Outcome string
	// Retries is the total number of re-dispatches the job saw: fault
	// requeues plus dispatcher retry/backoff attempts.
	Retries int
	// Resubmits counts network-layer resubmissions (ack-timeout or client
	// rescue, see internal/netfault); legacy traces read back as zero.
	Resubmits int
}

// ResponseTime returns Completion − Arrival.
func (r Record) ResponseTime() float64 { return r.Completion - r.Arrival }

// ResponseRatio returns response time divided by size.
func (r Record) ResponseRatio() float64 { return r.ResponseTime() / r.Size }

// Writer streams job records as CSV.
type Writer struct {
	cw          *csv.Writer
	wroteHeader bool
}

// NewWriter returns a Writer emitting CSV to w. The header row is written
// lazily with the first record.
func NewWriter(w io.Writer) *Writer {
	return &Writer{cw: csv.NewWriter(w)}
}

// Record appends one completed job to the trace with outcome "completed";
// use RecordFinal when recording through cluster.Config.OnFinal.
func (w *Writer) Record(j *sim.Job) error {
	return w.RecordFinal(j, cluster.OutcomeCompleted)
}

// RecordFinal appends one finished job with its terminal outcome. It is
// designed as the cluster.Config.OnFinal callback: every job fate is
// recorded, with Completion zero for jobs that never completed.
func (w *Writer) RecordFinal(j *sim.Job, o cluster.Outcome) error {
	return w.Append(Record{
		ID:         j.ID,
		Target:     j.Target,
		Arrival:    j.Arrival,
		Size:       j.Size,
		Completion: j.Completion,
		Outcome:    o.String(),
		Retries:    j.Retries + j.Attempts,
		Resubmits:  j.Resubmits,
	})
}

// Append writes one record.
func (w *Writer) Append(r Record) error {
	if !w.wroteHeader {
		if err := w.cw.Write(header); err != nil {
			return err
		}
		w.wroteHeader = true
	}
	outcome := r.Outcome
	if outcome == "" {
		outcome = cluster.OutcomeCompleted.String()
	}
	return w.cw.Write([]string{
		strconv.FormatInt(r.ID, 10),
		strconv.Itoa(r.Target),
		strconv.FormatFloat(r.Arrival, 'g', -1, 64),
		strconv.FormatFloat(r.Size, 'g', -1, 64),
		strconv.FormatFloat(r.Completion, 'g', -1, 64),
		outcome,
		strconv.Itoa(r.Retries),
		strconv.Itoa(r.Resubmits),
	})
}

// Flush drains buffered rows to the underlying writer.
func (w *Writer) Flush() error {
	w.cw.Flush()
	return w.cw.Error()
}

// Reader parses a trace written by Writer.
type Reader struct {
	cr     *csv.Reader
	seenHd bool
}

// NewReader returns a Reader over CSV trace data, current or legacy
// five-column format.
func NewReader(r io.Reader) *Reader {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated per row: legacy or current width
	return &Reader{cr: cr}
}

// Next returns the next record, or io.EOF at the end of the trace.
func (r *Reader) Next() (Record, error) {
	for {
		row, err := r.cr.Read()
		if err != nil {
			return Record{}, err
		}
		if !r.seenHd {
			r.seenHd = true
			if row[0] == header[0] {
				continue // skip header row
			}
		}
		return parseRow(row)
	}
}

// ReadAll consumes the remaining records.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

func parseRow(row []string) (Record, error) {
	if len(row) != len(header) && len(row) != retryColumns && len(row) != legacyColumns {
		return Record{}, fmt.Errorf("trace: row has %d columns, want %d (or legacy %d/%d)", len(row), len(header), retryColumns, legacyColumns)
	}
	id, err := strconv.ParseInt(row[0], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad id %q: %v", row[0], err)
	}
	target, err := strconv.Atoi(row[1])
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad target %q: %v", row[1], err)
	}
	arrival, err := strconv.ParseFloat(row[2], 64)
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad arrival %q: %v", row[2], err)
	}
	size, err := strconv.ParseFloat(row[3], 64)
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad size %q: %v", row[3], err)
	}
	completion, err := strconv.ParseFloat(row[4], 64)
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad completion %q: %v", row[4], err)
	}
	rec := Record{ID: id, Target: target, Arrival: arrival, Size: size, Completion: completion,
		Outcome: cluster.OutcomeCompleted.String()}
	if len(row) == legacyColumns {
		return rec, nil
	}
	if _, err := cluster.ParseOutcome(row[5]); err != nil {
		return Record{}, err
	}
	rec.Outcome = row[5]
	retries, err := strconv.Atoi(row[6])
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad retries %q: %v", row[6], err)
	}
	rec.Retries = retries
	if len(row) == retryColumns {
		return rec, nil
	}
	resubmits, err := strconv.Atoi(row[7])
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad resubmits %q: %v", row[7], err)
	}
	rec.Resubmits = resubmits
	return rec, nil
}

// Replay converts trace records into the arrival stream consumed by
// cluster.Config.Replay, so a recorded workload can be re-run under a
// different policy or configuration. cluster requires arrivals sorted
// ascending; traces are written in *completion* order, so call
// SortByArrival first.
func Replay(records []Record) []cluster.ReplayJob {
	out := make([]cluster.ReplayJob, len(records))
	for i, r := range records {
		out[i] = cluster.ReplayJob{Arrival: r.Arrival, Size: r.Size}
	}
	return out
}

// SortByArrival sorts records in place by ascending arrival time. Traces
// are written in completion order, which for PS servers is not arrival
// order.
func SortByArrival(records []Record) {
	sort.Slice(records, func(i, j int) bool { return records[i].Arrival < records[j].Arrival })
}

// Summary aggregates a trace into the paper's metrics plus per-computer
// breakdowns.
type Summary struct {
	Jobs              int64
	MeanResponseTime  float64
	MeanResponseRatio float64
	Fairness          float64
	// PerTarget maps computer index to its job count.
	PerTarget map[int]int64
	// Unfinished counts records whose outcome is not a completion (kills,
	// sheds, drops, losses); they are excluded from the response-time
	// statistics, which have no meaning for jobs that never finished.
	Unfinished int64
}

// Summarize streams records from r and computes the summary over the
// completed (possibly late) jobs.
func Summarize(r *Reader) (*Summary, error) {
	var rt, rr stats.Accumulator
	perTarget := map[int]int64{}
	var unfinished int64
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		if o, perr := cluster.ParseOutcome(rec.Outcome); perr == nil && !o.Completed() {
			unfinished++
			continue
		}
		rt.Add(rec.ResponseTime())
		rr.Add(rec.ResponseRatio())
		perTarget[rec.Target]++
	}
	return &Summary{
		Jobs:              rt.N(),
		MeanResponseTime:  rt.Mean(),
		MeanResponseRatio: rr.Mean(),
		Fairness:          rr.PopStdDev(),
		PerTarget:         perTarget,
		Unfinished:        unfinished,
	}, nil
}
