// Package trace records and reads per-job simulation traces. A trace is a
// CSV stream with one row per finished job — id, target computer, arrival
// time, size, completion time, terminal outcome, retry count — enabling
// offline analysis (response-time distributions, per-computer breakdowns)
// and regression comparison between runs.
//
// Wire a Writer into a simulation through cluster.Config.OnFinal, which
// fires for every terminal outcome (kills, sheds and drops included), not
// just completions:
//
//	w := trace.NewWriter(f)
//	cfg.OnFinal = func(j *sim.Job, o cluster.Outcome) { _ = w.RecordFinal(j, o) }
//	... run ...
//	err := w.Flush()
//
// The format is versioned by column count: every historical layout is a
// strict prefix of the current column order (see header and
// traceVersions), so the Reader accepts the legacy five-column format
// (no outcome or retries; rows read back as outcome "completed" with
// zero retries), the seven-column format (no resubmits), the
// eight-column format (no per-component time attribution) and the
// current twelve-column format with the queue/service/net/retry
// response-time decomposition from the probe span layer (zero when the
// producing run had spans off).
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"

	"heterosched/internal/cluster"
	"heterosched/internal/sim"
	"heterosched/internal/stats"
)

// header is the canonical CSV column order, written once per trace.
// Columns are only ever appended, so every historical format is a
// strict prefix of this list and one width→version map (traceVersions)
// replaces per-format fallback branches: to add columns, append them
// here, register the new width below, and add their parsers to
// columnParsers — nothing else changes.
var header = []string{
	"id", "target", "arrival", "size", "completion", // v0 (original)
	"outcome", "retries", // v1
	"resubmits", // v2
	"queue", "service", "net", "retry", // v3 (span decomposition)
}

// traceVersions maps a row's column count to the format version that
// produced it. Absent fields take their documented defaults (outcome
// "completed", zero counts, zero components).
var traceVersions = map[int]int{5: 0, 7: 1, 8: 2, 12: 3}

// Record is one finished job.
type Record struct {
	ID         int64
	Target     int
	Arrival    float64
	Size       float64
	Completion float64
	// Outcome is the terminal outcome's wire name (cluster.Outcome); a
	// legacy trace reads back as "completed".
	Outcome string
	// Retries is the total number of re-dispatches the job saw: fault
	// requeues plus dispatcher retry/backoff attempts.
	Retries int
	// Resubmits counts network-layer resubmissions (ack-timeout or client
	// rescue, see internal/netfault); legacy traces read back as zero.
	Resubmits int
	// Queue, Service, Net and Retry are the probe span layer's additive
	// response-time decomposition (they sum to ResponseTime for completed
	// jobs when the producing run had spans on; all zero otherwise and in
	// pre-v3 traces).
	Queue, Service, Net, Retry float64
}

// ResponseTime returns Completion − Arrival.
func (r Record) ResponseTime() float64 { return r.Completion - r.Arrival }

// ResponseRatio returns response time divided by size.
func (r Record) ResponseRatio() float64 { return r.ResponseTime() / r.Size }

// Writer streams job records as CSV.
type Writer struct {
	cw          *csv.Writer
	wroteHeader bool
}

// NewWriter returns a Writer emitting CSV to w. The header row is written
// lazily with the first record.
func NewWriter(w io.Writer) *Writer {
	return &Writer{cw: csv.NewWriter(w)}
}

// Record appends one completed job to the trace with outcome "completed";
// use RecordFinal when recording through cluster.Config.OnFinal.
func (w *Writer) Record(j *sim.Job) error {
	return w.RecordFinal(j, cluster.OutcomeCompleted)
}

// RecordFinal appends one finished job with its terminal outcome. It is
// designed as the cluster.Config.OnFinal callback: every job fate is
// recorded, with Completion zero for jobs that never completed. The
// component columns are written as zero; instrumented runs use
// RecordFinalComponents.
func (w *Writer) RecordFinal(j *sim.Job, o cluster.Outcome) error {
	return w.RecordFinalComponents(j, o, 0, 0, 0, 0)
}

// RecordFinalComponents appends one finished job with its terminal
// outcome and the span layer's response-time decomposition (probe
// SpanComponents, queried via Probe.LastFinal inside OnFinal).
func (w *Writer) RecordFinalComponents(j *sim.Job, o cluster.Outcome, queue, service, net, retry float64) error {
	return w.Append(Record{
		ID:         j.ID,
		Target:     j.Target,
		Arrival:    j.Arrival,
		Size:       j.Size,
		Completion: j.Completion,
		Outcome:    o.String(),
		Retries:    j.Retries + j.Attempts,
		Resubmits:  j.Resubmits,
		Queue:      queue,
		Service:    service,
		Net:        net,
		Retry:      retry,
	})
}

// Append writes one record.
func (w *Writer) Append(r Record) error {
	if !w.wroteHeader {
		if err := w.cw.Write(header); err != nil {
			return err
		}
		w.wroteHeader = true
	}
	outcome := r.Outcome
	if outcome == "" {
		outcome = cluster.OutcomeCompleted.String()
	}
	return w.cw.Write([]string{
		strconv.FormatInt(r.ID, 10),
		strconv.Itoa(r.Target),
		strconv.FormatFloat(r.Arrival, 'g', -1, 64),
		strconv.FormatFloat(r.Size, 'g', -1, 64),
		strconv.FormatFloat(r.Completion, 'g', -1, 64),
		outcome,
		strconv.Itoa(r.Retries),
		strconv.Itoa(r.Resubmits),
		strconv.FormatFloat(r.Queue, 'g', -1, 64),
		strconv.FormatFloat(r.Service, 'g', -1, 64),
		strconv.FormatFloat(r.Net, 'g', -1, 64),
		strconv.FormatFloat(r.Retry, 'g', -1, 64),
	})
}

// Flush drains buffered rows to the underlying writer.
func (w *Writer) Flush() error {
	w.cw.Flush()
	return w.cw.Error()
}

// Reader parses a trace written by Writer.
type Reader struct {
	cr     *csv.Reader
	seenHd bool
}

// NewReader returns a Reader over CSV trace data, current or legacy
// five-column format.
func NewReader(r io.Reader) *Reader {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated per row: legacy or current width
	return &Reader{cr: cr}
}

// Next returns the next record, or io.EOF at the end of the trace.
func (r *Reader) Next() (Record, error) {
	for {
		row, err := r.cr.Read()
		if err != nil {
			return Record{}, err
		}
		if !r.seenHd {
			r.seenHd = true
			if row[0] == header[0] {
				continue // skip header row
			}
		}
		return parseRow(row)
	}
}

// ReadAll consumes the remaining records.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// columnParsers assigns each canonical column, in header order, to its
// destination Record field. parseRow runs the prefix of this table
// matching the row's width, so every format version shares one parsing
// path and new columns need only a new entry here.
var columnParsers = []struct {
	name  string
	parse func(rec *Record, s string) error
}{
	{"id", func(rec *Record, s string) (err error) { rec.ID, err = strconv.ParseInt(s, 10, 64); return }},
	{"target", func(rec *Record, s string) (err error) { rec.Target, err = strconv.Atoi(s); return }},
	{"arrival", func(rec *Record, s string) (err error) { rec.Arrival, err = strconv.ParseFloat(s, 64); return }},
	{"size", func(rec *Record, s string) (err error) { rec.Size, err = strconv.ParseFloat(s, 64); return }},
	{"completion", func(rec *Record, s string) (err error) { rec.Completion, err = strconv.ParseFloat(s, 64); return }},
	{"outcome", func(rec *Record, s string) error {
		if _, err := cluster.ParseOutcome(s); err != nil {
			return err
		}
		rec.Outcome = s
		return nil
	}},
	{"retries", func(rec *Record, s string) (err error) { rec.Retries, err = strconv.Atoi(s); return }},
	{"resubmits", func(rec *Record, s string) (err error) { rec.Resubmits, err = strconv.Atoi(s); return }},
	{"queue", func(rec *Record, s string) (err error) { rec.Queue, err = strconv.ParseFloat(s, 64); return }},
	{"service", func(rec *Record, s string) (err error) { rec.Service, err = strconv.ParseFloat(s, 64); return }},
	{"net", func(rec *Record, s string) (err error) { rec.Net, err = strconv.ParseFloat(s, 64); return }},
	{"retry", func(rec *Record, s string) (err error) { rec.Retry, err = strconv.ParseFloat(s, 64); return }},
}

func parseRow(row []string) (Record, error) {
	if _, ok := traceVersions[len(row)]; !ok {
		widths := make([]int, 0, len(traceVersions))
		for w := range traceVersions {
			widths = append(widths, w)
		}
		sort.Ints(widths)
		return Record{}, fmt.Errorf("trace: row has %d columns, want one of %v", len(row), widths)
	}
	rec := Record{Outcome: cluster.OutcomeCompleted.String()}
	for i, s := range row {
		cp := columnParsers[i]
		if err := cp.parse(&rec, s); err != nil {
			return Record{}, fmt.Errorf("trace: bad %s %q: %v", cp.name, s, err)
		}
	}
	return rec, nil
}

// Replay converts trace records into the arrival stream consumed by
// cluster.Config.Replay, so a recorded workload can be re-run under a
// different policy or configuration. cluster requires arrivals sorted
// ascending; traces are written in *completion* order, so call
// SortByArrival first.
func Replay(records []Record) []cluster.ReplayJob {
	out := make([]cluster.ReplayJob, len(records))
	for i, r := range records {
		out[i] = cluster.ReplayJob{Arrival: r.Arrival, Size: r.Size}
	}
	return out
}

// SortByArrival sorts records in place by ascending arrival time. Traces
// are written in completion order, which for PS servers is not arrival
// order.
func SortByArrival(records []Record) {
	sort.Slice(records, func(i, j int) bool { return records[i].Arrival < records[j].Arrival })
}

// Summary aggregates a trace into the paper's metrics plus per-computer
// breakdowns.
type Summary struct {
	Jobs              int64
	MeanResponseTime  float64
	MeanResponseRatio float64
	Fairness          float64
	// PerTarget maps computer index to its job count.
	PerTarget map[int]int64
	// Unfinished counts records whose outcome is not a completion (kills,
	// sheds, drops, losses); they are excluded from the response-time
	// statistics, which have no meaning for jobs that never finished.
	Unfinished int64
}

// Summarize streams records from r and computes the summary over the
// completed (possibly late) jobs.
func Summarize(r *Reader) (*Summary, error) {
	var rt, rr stats.Accumulator
	perTarget := map[int]int64{}
	var unfinished int64
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		if o, perr := cluster.ParseOutcome(rec.Outcome); perr == nil && !o.Completed() {
			unfinished++
			continue
		}
		rt.Add(rec.ResponseTime())
		rr.Add(rec.ResponseRatio())
		perTarget[rec.Target]++
	}
	return &Summary{
		Jobs:              rt.N(),
		MeanResponseTime:  rt.Mean(),
		MeanResponseRatio: rr.Mean(),
		Fairness:          rr.PopStdDev(),
		PerTarget:         perTarget,
		Unfinished:        unfinished,
	}, nil
}
