// Package trace records and reads per-job simulation traces. A trace is a
// CSV stream with one row per completed job — id, target computer,
// arrival time, size, completion time — enabling offline analysis
// (response-time distributions, per-computer breakdowns) and regression
// comparison between runs.
//
// Wire a Writer into a simulation through cluster.Config.OnDeparture:
//
//	w := trace.NewWriter(f)
//	cfg.OnDeparture = func(j *sim.Job) { _ = w.Record(j) }
//	... run ...
//	err := w.Flush()
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"

	"heterosched/internal/cluster"
	"heterosched/internal/sim"
	"heterosched/internal/stats"
)

// header is the CSV column layout, written once per trace.
var header = []string{"id", "target", "arrival", "size", "completion"}

// Record is one completed job.
type Record struct {
	ID         int64
	Target     int
	Arrival    float64
	Size       float64
	Completion float64
}

// ResponseTime returns Completion − Arrival.
func (r Record) ResponseTime() float64 { return r.Completion - r.Arrival }

// ResponseRatio returns response time divided by size.
func (r Record) ResponseRatio() float64 { return r.ResponseTime() / r.Size }

// Writer streams job records as CSV.
type Writer struct {
	cw          *csv.Writer
	wroteHeader bool
}

// NewWriter returns a Writer emitting CSV to w. The header row is written
// lazily with the first record.
func NewWriter(w io.Writer) *Writer {
	return &Writer{cw: csv.NewWriter(w)}
}

// Record appends one completed job to the trace.
func (w *Writer) Record(j *sim.Job) error {
	return w.Append(Record{
		ID:         j.ID,
		Target:     j.Target,
		Arrival:    j.Arrival,
		Size:       j.Size,
		Completion: j.Completion,
	})
}

// Append writes one record.
func (w *Writer) Append(r Record) error {
	if !w.wroteHeader {
		if err := w.cw.Write(header); err != nil {
			return err
		}
		w.wroteHeader = true
	}
	return w.cw.Write([]string{
		strconv.FormatInt(r.ID, 10),
		strconv.Itoa(r.Target),
		strconv.FormatFloat(r.Arrival, 'g', -1, 64),
		strconv.FormatFloat(r.Size, 'g', -1, 64),
		strconv.FormatFloat(r.Completion, 'g', -1, 64),
	})
}

// Flush drains buffered rows to the underlying writer.
func (w *Writer) Flush() error {
	w.cw.Flush()
	return w.cw.Error()
}

// Reader parses a trace written by Writer.
type Reader struct {
	cr     *csv.Reader
	seenHd bool
}

// NewReader returns a Reader over CSV trace data.
func NewReader(r io.Reader) *Reader {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(header)
	return &Reader{cr: cr}
}

// Next returns the next record, or io.EOF at the end of the trace.
func (r *Reader) Next() (Record, error) {
	for {
		row, err := r.cr.Read()
		if err != nil {
			return Record{}, err
		}
		if !r.seenHd {
			r.seenHd = true
			if row[0] == header[0] {
				continue // skip header row
			}
		}
		return parseRow(row)
	}
}

// ReadAll consumes the remaining records.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

func parseRow(row []string) (Record, error) {
	id, err := strconv.ParseInt(row[0], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad id %q: %v", row[0], err)
	}
	target, err := strconv.Atoi(row[1])
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad target %q: %v", row[1], err)
	}
	arrival, err := strconv.ParseFloat(row[2], 64)
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad arrival %q: %v", row[2], err)
	}
	size, err := strconv.ParseFloat(row[3], 64)
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad size %q: %v", row[3], err)
	}
	completion, err := strconv.ParseFloat(row[4], 64)
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad completion %q: %v", row[4], err)
	}
	return Record{ID: id, Target: target, Arrival: arrival, Size: size, Completion: completion}, nil
}

// Replay converts trace records into the arrival stream consumed by
// cluster.Config.Replay, so a recorded workload can be re-run under a
// different policy or configuration. cluster requires arrivals sorted
// ascending; traces are written in *completion* order, so call
// SortByArrival first.
func Replay(records []Record) []cluster.ReplayJob {
	out := make([]cluster.ReplayJob, len(records))
	for i, r := range records {
		out[i] = cluster.ReplayJob{Arrival: r.Arrival, Size: r.Size}
	}
	return out
}

// SortByArrival sorts records in place by ascending arrival time. Traces
// are written in completion order, which for PS servers is not arrival
// order.
func SortByArrival(records []Record) {
	sort.Slice(records, func(i, j int) bool { return records[i].Arrival < records[j].Arrival })
}

// Summary aggregates a trace into the paper's metrics plus per-computer
// breakdowns.
type Summary struct {
	Jobs              int64
	MeanResponseTime  float64
	MeanResponseRatio float64
	Fairness          float64
	// PerTarget maps computer index to its job count.
	PerTarget map[int]int64
}

// Summarize streams records from r and computes the summary.
func Summarize(r *Reader) (*Summary, error) {
	var rt, rr stats.Accumulator
	perTarget := map[int]int64{}
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		rt.Add(rec.ResponseTime())
		rr.Add(rec.ResponseRatio())
		perTarget[rec.Target]++
	}
	return &Summary{
		Jobs:              rt.N(),
		MeanResponseTime:  rt.Mean(),
		MeanResponseRatio: rr.Mean(),
		Fairness:          rr.PopStdDev(),
		PerTarget:         perTarget,
	}, nil
}
