// Package queueing implements the analytical performance model of the
// paper's §2: each computer is an M/M/1 queue with processor-sharing (PS)
// service, so a job of size t at a server with utilization ρ has expected
// response time t/(1−ρ). The package provides the per-computer and
// system-level mean response time T̄ and mean response ratio R̄ for a given
// workload allocation, the paper's objective function F (Definition 1), and
// the closed-form minimum of Theorem 1.
//
// Conventions match the paper: the system has n computers with relative
// speeds s_i (>0), a base-line service rate μ (jobs/second for a speed-1
// machine), a system arrival rate λ, and an allocation vector α with
// Σα_i = 1 where computer i receives a fraction α_i of arrivals.
package queueing

import (
	"errors"
	"fmt"
	"math"
)

// ErrSaturated is returned when an allocation saturates one or more
// computers (α_i λ ≥ s_i μ) or the system itself is saturated
// (λ ≥ μ Σs_i).
var ErrSaturated = errors.New("queueing: saturated server or system")

// System describes a network of heterogeneous computers fed by a central
// scheduler (the paper's Figure 1).
type System struct {
	Speeds []float64 // relative speeds s_i, all > 0
	Mu     float64   // base-line service rate μ (speed-1 machine), > 0
	Lambda float64   // system job arrival rate λ, >= 0
}

// NewSystem validates and returns a System.
func NewSystem(speeds []float64, mu, lambda float64) (*System, error) {
	if len(speeds) == 0 {
		return nil, errors.New("queueing: no computers")
	}
	for i, s := range speeds {
		if !(s > 0) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("queueing: speed[%d] = %v, must be positive and finite", i, s)
		}
	}
	if !(mu > 0) {
		return nil, fmt.Errorf("queueing: mu = %v, must be positive", mu)
	}
	if lambda < 0 || math.IsNaN(lambda) {
		return nil, fmt.Errorf("queueing: lambda = %v, must be non-negative", lambda)
	}
	cp := make([]float64, len(speeds))
	copy(cp, speeds)
	return &System{Speeds: cp, Mu: mu, Lambda: lambda}, nil
}

// SystemFromUtilization builds a System with the given speeds and target
// overall utilization ρ = λ/(μ Σs_i), choosing μ from the mean job size
// (μ = 1/meanJobSize) and λ = ρ μ Σs_i. This matches how the paper's
// Algorithm 1 is parameterized ("we only need to know ρ and the speeds").
func SystemFromUtilization(speeds []float64, meanJobSize, rho float64) (*System, error) {
	if !(meanJobSize > 0) {
		return nil, fmt.Errorf("queueing: mean job size %v, must be positive", meanJobSize)
	}
	if rho < 0 {
		return nil, fmt.Errorf("queueing: utilization %v, must be non-negative", rho)
	}
	mu := 1 / meanJobSize
	total := 0.0
	for _, s := range speeds {
		total += s
	}
	return NewSystem(speeds, mu, rho*mu*total)
}

// N returns the number of computers.
func (sys *System) N() int { return len(sys.Speeds) }

// TotalSpeed returns Σ s_i.
func (sys *System) TotalSpeed() float64 {
	t := 0.0
	for _, s := range sys.Speeds {
		t += s
	}
	return t
}

// Capacity returns the aggregate service rate μ Σs_i.
func (sys *System) Capacity() float64 { return sys.Mu * sys.TotalSpeed() }

// Utilization returns ρ = λ / (μ Σ s_i).
func (sys *System) Utilization() float64 { return sys.Lambda / sys.Capacity() }

// Stable reports whether the system is underloaded (λ < μ Σs_i).
func (sys *System) Stable() bool { return sys.Lambda < sys.Capacity() }

// checkAlloc validates the allocation vector dimension and per-server
// stability. If requireSum is true it also checks Σα = 1 (±1e-9).
func (sys *System) checkAlloc(alpha []float64, requireSum bool) error {
	if len(alpha) != len(sys.Speeds) {
		return fmt.Errorf("queueing: allocation has %d entries for %d computers", len(alpha), len(sys.Speeds))
	}
	sum := 0.0
	for i, a := range alpha {
		if a < -1e-12 || math.IsNaN(a) {
			return fmt.Errorf("queueing: alpha[%d] = %v, must be non-negative", i, a)
		}
		if a*sys.Lambda >= sys.Speeds[i]*sys.Mu {
			return fmt.Errorf("%w: computer %d (alpha=%.6g, s*mu=%.6g, alpha*lambda=%.6g)",
				ErrSaturated, i, a, sys.Speeds[i]*sys.Mu, a*sys.Lambda)
		}
		sum += a
	}
	if requireSum && math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("queueing: allocation sums to %v, want 1", sum)
	}
	return nil
}

// ServerUtilization returns ρ_i = α_i λ / (s_i μ) for each computer.
func (sys *System) ServerUtilization(alpha []float64) ([]float64, error) {
	if err := sys.checkAlloc(alpha, false); err != nil {
		return nil, err
	}
	rho := make([]float64, len(alpha))
	for i, a := range alpha {
		rho[i] = a * sys.Lambda / (sys.Speeds[i] * sys.Mu)
	}
	return rho, nil
}

// MeanResponseTime returns the system mean response time for allocation α
// (paper equation (3)):
//
//	T̄ = Σ_i α_i / (s_i μ − α_i λ).
func (sys *System) MeanResponseTime(alpha []float64) (float64, error) {
	if err := sys.checkAlloc(alpha, true); err != nil {
		return 0, err
	}
	t := 0.0
	for i, a := range alpha {
		if a == 0 {
			continue
		}
		t += a / (sys.Speeds[i]*sys.Mu - a*sys.Lambda)
	}
	return t, nil
}

// MeanResponseRatio returns the system mean response ratio
// R̄ = μ T̄ (paper §2.3). The response ratio of a job is its response time
// divided by its size, where size is the completion time on an idle
// speed-1 machine.
func (sys *System) MeanResponseRatio(alpha []float64) (float64, error) {
	t, err := sys.MeanResponseTime(alpha)
	if err != nil {
		return 0, err
	}
	return sys.Mu * t, nil
}

// PerServerMeanResponseTime returns T̄_i = 1/(s_i μ − α_i λ) for each
// computer with α_i > 0; entries with α_i = 0 are NaN (no jobs, no mean).
func (sys *System) PerServerMeanResponseTime(alpha []float64) ([]float64, error) {
	if err := sys.checkAlloc(alpha, false); err != nil {
		return nil, err
	}
	out := make([]float64, len(alpha))
	for i, a := range alpha {
		if a == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = 1 / (sys.Speeds[i]*sys.Mu - a*sys.Lambda)
	}
	return out, nil
}

// Objective evaluates the paper's objective function (Definition 1):
//
//	F(α) = Σ_i s_i μ / (s_i μ − α_i λ).
//
// Minimizing F is equivalent to minimizing T̄ because
// T̄ = −n/λ + F/λ.
func (sys *System) Objective(alpha []float64) (float64, error) {
	if err := sys.checkAlloc(alpha, false); err != nil {
		return 0, err
	}
	f := 0.0
	for i, a := range alpha {
		si := sys.Speeds[i] * sys.Mu
		f += si / (si - a*sys.Lambda)
	}
	return f, nil
}

// TheoremOneMinimum returns the minimum value of F over the unconstrained
// (sign-free) allocation of Theorem 1:
//
//	F* = (Σ √(s_j μ))² / (Σ s_j μ − λ).
//
// It returns ErrSaturated if the system is saturated.
func (sys *System) TheoremOneMinimum() (float64, error) {
	if !sys.Stable() {
		return 0, fmt.Errorf("%w: lambda=%g capacity=%g", ErrSaturated, sys.Lambda, sys.Capacity())
	}
	sumSqrt := 0.0
	sumRate := 0.0
	for _, s := range sys.Speeds {
		sumSqrt += math.Sqrt(s * sys.Mu)
		sumRate += s * sys.Mu
	}
	return sumSqrt * sumSqrt / (sumRate - sys.Lambda), nil
}

// ObjectiveToMeanResponseTime converts an objective value F to the
// corresponding mean response time T̄ = (F − n)/λ.
func (sys *System) ObjectiveToMeanResponseTime(f float64) float64 {
	return (f - float64(sys.N())) / sys.Lambda
}

// MM1PSResponseTime returns the expected response time of a job of size t
// at a PS server with utilization rho: t/(1−rho). It returns +Inf at
// rho >= 1.
func MM1PSResponseTime(t, rho float64) float64 {
	if rho >= 1 {
		return math.Inf(1)
	}
	return t / (1 - rho)
}

// MM1MeanResponseTime returns the mean response time of an M/M/1 queue
// with arrival rate lambda and service rate mu: 1/(μ−λ), or +Inf when
// saturated. (For M/M/1, FCFS and PS have the same mean.)
func MM1MeanResponseTime(lambda, mu float64) float64 {
	if lambda >= mu {
		return math.Inf(1)
	}
	return 1 / (mu - lambda)
}

// MM1MeanQueueLength returns the mean number of jobs in an M/M/1 queue:
// ρ/(1−ρ), or +Inf when saturated.
func MM1MeanQueueLength(lambda, mu float64) float64 {
	if lambda >= mu {
		return math.Inf(1)
	}
	rho := lambda / mu
	return rho / (1 - rho)
}

// MM1ResponseTimeQuantile returns the q-quantile of the response time of
// an M/M/1 FCFS queue: the response time is exponential with rate μ−λ,
// so T_q = −ln(1−q)/(μ−λ). It returns +Inf when saturated or q = 1 and
// panics for q outside [0, 1).
func MM1ResponseTimeQuantile(lambda, mu, q float64) float64 {
	if q < 0 || q >= 1 {
		panic(fmt.Sprintf("queueing: quantile %v outside [0,1)", q))
	}
	if lambda >= mu {
		return math.Inf(1)
	}
	return -math.Log(1-q) / (mu - lambda)
}

// MG1FCFSMeanWait returns the Pollaczek–Khinchine mean waiting time of an
// M/G/1 FCFS queue with arrival rate lambda and service-time moments
// E[S] = meanS, E[S²] = meanS2:
//
//	E[W] = λ E[S²] / (2 (1 − ρ)),  ρ = λ E[S].
//
// It returns +Inf when saturated. Unlike PS, FCFS mean response depends on
// the second moment — the analytic backdrop to why PS is the right
// discipline for heavy-tailed workloads (and why the paper's computers use
// preemptive scheduling).
func MG1FCFSMeanWait(lambda, meanS, meanS2 float64) float64 {
	rho := lambda * meanS
	if rho >= 1 {
		return math.Inf(1)
	}
	return lambda * meanS2 / (2 * (1 - rho))
}

// MG1FCFSMeanResponseTime returns E[T] = E[S] + E[W] for an M/G/1 FCFS
// queue (Pollaczek–Khinchine), or +Inf when saturated.
func MG1FCFSMeanResponseTime(lambda, meanS, meanS2 float64) float64 {
	w := MG1FCFSMeanWait(lambda, meanS, meanS2)
	if math.IsInf(w, 1) {
		return w
	}
	return meanS + w
}
