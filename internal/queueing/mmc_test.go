package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestErlangCSingleServer(t *testing.T) {
	// c=1: C = ρ (the M/M/1 probability of waiting).
	for _, a := range []float64{0.1, 0.5, 0.9} {
		got, err := ErlangC(1, a)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-a) > 1e-12 {
			t.Errorf("ErlangC(1, %v) = %v, want %v", a, got, a)
		}
	}
}

func TestErlangCKnownValue(t *testing.T) {
	// Classic tabulated value: c=5, a=4 Erlangs → C ≈ 0.5541.
	got, err := ErlangC(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5541) > 5e-4 {
		t.Errorf("ErlangC(5,4) = %v, want ~0.5541", got)
	}
}

func TestErlangCEdges(t *testing.T) {
	if got, err := ErlangC(3, 0); err != nil || got != 0 {
		t.Errorf("zero load: %v, %v", got, err)
	}
	if got, err := ErlangC(3, 3); err != nil || got != 1 {
		t.Errorf("saturated: %v, %v", got, err)
	}
	if _, err := ErlangC(0, 1); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := ErlangC(2, -1); err == nil {
		t.Error("negative load accepted")
	}
}

// Property: Erlang-C is a probability and increases with offered load.
func TestQuickErlangCMonotone(t *testing.T) {
	f := func(cRaw, aRaw uint8) bool {
		c := int(cRaw%20) + 1
		a1 := float64(aRaw%100) / 100 * float64(c) * 0.95
		a2 := a1 * 1.05
		if a2 >= float64(c) {
			return true
		}
		p1, err1 := ErlangC(c, a1)
		p2, err2 := ErlangC(c, a2)
		if err1 != nil || err2 != nil {
			return false
		}
		return p1 >= 0 && p1 <= 1 && p2+1e-12 >= p1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMMcMeanResponse(t *testing.T) {
	// c=1 reduces to M/M/1.
	got, err := MMcMeanResponseTime(1, 0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("M/M/1 via M/M/c = %v, want 2", got)
	}
	// More servers at the same total capacity serve better than fewer
	// only for waits, worse for service: compare sensibly — M/M/2 with
	// per-server μ=1 at λ=1: E[T] = 1 + C(2,1)/(2−1); C(2,1) = 1/3 → 4/3.
	got2, err := MMcMeanResponseTime(2, 1.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got2-4.0/3) > 1e-9 {
		t.Errorf("M/M/2 = %v, want 4/3", got2)
	}
	// Saturation.
	inf, err := MMcMeanResponseTime(2, 2.0, 1.0)
	if err != nil || !math.IsInf(inf, 1) {
		t.Errorf("saturated M/M/c = %v, %v", inf, err)
	}
	if _, err := MMcMeanResponseTime(1, 1, 0); err == nil {
		t.Error("mu=0 accepted")
	}
}

func TestPooledBound(t *testing.T) {
	sys := mustSystem(t, []float64{1, 1, 10}, 1.0, 6.0)
	// Pooled capacity 12, λ=6: E[T] = 1/(12−6).
	if got := sys.PooledMeanResponseTime(); math.Abs(got-1.0/6) > 1e-12 {
		t.Errorf("pooled T = %v, want 1/6", got)
	}
	if got := sys.PooledMeanResponseRatio(); math.Abs(got-1.0/6) > 1e-12 {
		t.Errorf("pooled R = %v (mu=1)", got)
	}
}

func TestPooledBoundBelowOptimizedStatic(t *testing.T) {
	// The pooled bound must lower-bound the Theorem 1 optimum for every
	// configuration (pooling dominates any split).
	configs := []struct {
		speeds []float64
		rho    float64
	}{
		{[]float64{1, 1, 1, 1}, 0.6},
		{[]float64{1, 2, 4, 8}, 0.7},
		{[]float64{1, 1.5, 2, 3, 5, 9, 10}, 0.9},
	}
	for _, c := range configs {
		total := 0.0
		for _, s := range c.speeds {
			total += s
		}
		sys := mustSystem(t, c.speeds, 1.0, c.rho*total)
		fstar, err := sys.TheoremOneMinimum()
		if err != nil {
			t.Fatal(err)
		}
		tStar := sys.ObjectiveToMeanResponseTime(fstar)
		if pooled := sys.PooledMeanResponseTime(); pooled > tStar+1e-12 {
			t.Errorf("speeds %v rho %v: pooled bound %v above static optimum %v",
				c.speeds, c.rho, pooled, tStar)
		}
	}
}

func TestPooledBoundSaturated(t *testing.T) {
	sys := mustSystem(t, []float64{1}, 1.0, 2.0)
	if !math.IsInf(sys.PooledMeanResponseTime(), 1) {
		t.Error("saturated pooled bound should be +Inf")
	}
}
