package queueing

import (
	"fmt"
	"math"
)

// This file provides multi-server and pooled-capacity reference models.
// They are not part of the paper's analysis; they bound what *any*
// scheduler (static or dynamic) could achieve on the same hardware, which
// calibrates how much of the dynamic Least-Load advantage comes from
// information versus from capacity pooling.

// ErlangC returns the probability that an arriving job must wait in an
// M/M/c queue with offered load a = λ/μ (in Erlangs) and c servers — the
// Erlang-C formula. It returns 1 when the system is saturated (a >= c)
// and an error for invalid arguments.
func ErlangC(c int, a float64) (float64, error) {
	if c <= 0 {
		return 0, fmt.Errorf("queueing: ErlangC needs c > 0, got %d", c)
	}
	if a < 0 || math.IsNaN(a) {
		return 0, fmt.Errorf("queueing: ErlangC offered load %v invalid", a)
	}
	if a == 0 {
		return 0, nil
	}
	if a >= float64(c) {
		return 1, nil
	}
	// Iteratively build the Erlang-B blocking probability, then convert:
	// B(0, a) = 1; B(k, a) = a·B(k−1)/(k + a·B(k−1)); and
	// C = B(c) / (1 − (a/c)(1 − B(c))).
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho*(1-b)), nil
}

// MMcMeanResponseTime returns the mean response time of an M/M/c queue
// with per-server rate mu and arrival rate lambda:
// E[T] = 1/μ + C(c, λ/μ) / (cμ − λ). It returns +Inf when saturated.
func MMcMeanResponseTime(c int, lambda, mu float64) (float64, error) {
	if mu <= 0 {
		return 0, fmt.Errorf("queueing: M/M/c service rate %v invalid", mu)
	}
	a := lambda / mu
	pWait, err := ErlangC(c, a)
	if err != nil {
		return 0, err
	}
	if a >= float64(c) {
		return math.Inf(1), nil
	}
	return 1/mu + pWait/(float64(c)*mu-lambda), nil
}

// PooledMeanResponseTime returns the mean response time of the idealized
// fully-pooled system: a single M/M/1-PS server with the aggregate
// capacity μΣs_i serving the whole stream. No scheduler on the real
// (unpooled) hardware can beat it, so it is the universal lower bound
// against which LL and ORR are measured. Returns +Inf when saturated.
func (sys *System) PooledMeanResponseTime() float64 {
	return MM1MeanResponseTime(sys.Lambda, sys.Capacity())
}

// PooledMeanResponseRatio is μ · PooledMeanResponseTime.
func (sys *System) PooledMeanResponseRatio() float64 {
	t := sys.PooledMeanResponseTime()
	if math.IsInf(t, 1) {
		return t
	}
	return sys.Mu * t
}
