package queueing_test

import (
	"fmt"

	"heterosched/internal/queueing"
)

// Predict the paper's headline comparison analytically: mean response
// ratio of the weighted vs optimized allocation on a skewed system.
func ExampleSystem_MeanResponseRatio() {
	speeds := []float64{1, 1, 10}
	sys, err := queueing.SystemFromUtilization(speeds, 76.8, 0.7)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	weighted := []float64{1.0 / 12, 1.0 / 12, 10.0 / 12}
	r, err := sys.MeanResponseRatio(weighted)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("weighted allocation: mean response ratio %.4f\n", r)
	// Output:
	// weighted allocation: mean response ratio 0.8333
}

// Theorem 1's closed-form minimum of the objective function F.
func ExampleSystem_TheoremOneMinimum() {
	sys, err := queueing.SystemFromUtilization([]float64{4, 5, 6}, 1.0, 0.8)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fstar, err := sys.TheoremOneMinimum()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("F* = %.4f, implied mean response time %.4f s\n",
		fstar, sys.ObjectiveToMeanResponseTime(fstar))
	// Output:
	// F* = 14.8989, implied mean response time 0.9916 s
}

// Erlang-C: probability of queueing in an M/M/c system.
func ExampleErlangC() {
	p, err := queueing.ErlangC(5, 4)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("P(wait) with 5 servers at 4 Erlangs = %.4f\n", p)
	// Output:
	// P(wait) with 5 servers at 4 Erlangs = 0.5541
}
