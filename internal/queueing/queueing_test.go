package queueing

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func mustSystem(t *testing.T, speeds []float64, mu, lambda float64) *System {
	t.Helper()
	sys, err := NewSystem(speeds, mu, lambda)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemValidation(t *testing.T) {
	cases := []struct {
		speeds []float64
		mu, la float64
	}{
		{nil, 1, 1},
		{[]float64{1, 0}, 1, 1},
		{[]float64{1, -2}, 1, 1},
		{[]float64{1}, 0, 1},
		{[]float64{1}, 1, -1},
		{[]float64{math.Inf(1)}, 1, 1},
	}
	for _, c := range cases {
		if _, err := NewSystem(c.speeds, c.mu, c.la); err == nil {
			t.Errorf("NewSystem(%v,%v,%v) accepted invalid input", c.speeds, c.mu, c.la)
		}
	}
}

func TestSystemFromUtilization(t *testing.T) {
	// Paper base config: aggregate speed 44, mean job size 76.8 s, ρ=0.7.
	speeds := []float64{1, 1, 1, 1, 1, 1.5, 1.5, 1.5, 1.5, 2, 2, 2, 5, 10, 12}
	sys, err := SystemFromUtilization(speeds, 76.8, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sys.TotalSpeed()-44) > 1e-12 {
		t.Errorf("total speed = %v, want 44", sys.TotalSpeed())
	}
	if math.Abs(sys.Utilization()-0.7) > 1e-12 {
		t.Errorf("utilization = %v, want 0.7", sys.Utilization())
	}
	if !sys.Stable() {
		t.Error("system at 70% load should be stable")
	}
}

func TestSingleServerMatchesMM1(t *testing.T) {
	// One speed-1 computer: T̄ = 1/(μ−λ).
	sys := mustSystem(t, []float64{1}, 1.0, 0.5)
	got, err := sys.MeanResponseTime([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	want := MM1MeanResponseTime(0.5, 1.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("T̄ = %v, want %v", got, want)
	}
}

func TestMeanResponseRatioIsMuT(t *testing.T) {
	sys := mustSystem(t, []float64{1, 2, 4}, 0.1, 0.4)
	alpha := []float64{0.2, 0.3, 0.5}
	tbar, err := sys.MeanResponseTime(alpha)
	if err != nil {
		t.Fatal(err)
	}
	rbar, err := sys.MeanResponseRatio(alpha)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rbar-sys.Mu*tbar) > 1e-12 {
		t.Errorf("R̄ = %v, μT̄ = %v", rbar, sys.Mu*tbar)
	}
}

func TestObjectiveIdentity(t *testing.T) {
	// T̄ = (F − n)/λ must hold for any feasible allocation (paper §2.3).
	sys := mustSystem(t, []float64{1, 3, 5}, 0.5, 2.0)
	alpha := []float64{0.1, 0.35, 0.55}
	f, err := sys.Objective(alpha)
	if err != nil {
		t.Fatal(err)
	}
	tbar, err := sys.MeanResponseTime(alpha)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sys.ObjectiveToMeanResponseTime(f)-tbar) > 1e-12 {
		t.Errorf("identity violated: (F-n)/λ = %v, T̄ = %v", sys.ObjectiveToMeanResponseTime(f), tbar)
	}
}

func TestSaturatedServerRejected(t *testing.T) {
	sys := mustSystem(t, []float64{1, 10}, 1.0, 5.0)
	// alpha[0]*λ = 2.5 > s_0 μ = 1: saturated.
	_, err := sys.MeanResponseTime([]float64{0.5, 0.5})
	if !errors.Is(err, ErrSaturated) {
		t.Errorf("err = %v, want ErrSaturated", err)
	}
}

func TestAllocationSumChecked(t *testing.T) {
	sys := mustSystem(t, []float64{1, 1}, 1.0, 0.5)
	if _, err := sys.MeanResponseTime([]float64{0.3, 0.3}); err == nil {
		t.Error("allocation summing to 0.6 accepted")
	}
	if _, err := sys.MeanResponseTime([]float64{0.3}); err == nil {
		t.Error("wrong-length allocation accepted")
	}
	if _, err := sys.MeanResponseTime([]float64{-0.1, 1.1}); err == nil {
		t.Error("negative allocation accepted")
	}
}

func TestZeroAllocationEntrySkipped(t *testing.T) {
	// A computer with α=0 contributes nothing to T̄.
	sys := mustSystem(t, []float64{1, 1}, 1.0, 0.5)
	one, err := sys.MeanResponseTime([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := MM1MeanResponseTime(0.5, 1.0)
	if math.Abs(one-want) > 1e-12 {
		t.Errorf("T̄ = %v, want %v", one, want)
	}
}

func TestServerUtilization(t *testing.T) {
	sys := mustSystem(t, []float64{1, 4}, 1.0, 2.0)
	rho, err := sys.ServerUtilization([]float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho[0]-0.5) > 1e-12 || math.Abs(rho[1]-0.375) > 1e-12 {
		t.Errorf("rho = %v, want [0.5 0.375]", rho)
	}
}

func TestPerServerMeanResponseTime(t *testing.T) {
	sys := mustSystem(t, []float64{1, 2}, 1.0, 1.0)
	ts, err := sys.PerServerMeanResponseTime([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ts[0]-1/(1.0-0.5)) > 1e-12 {
		t.Errorf("T̄_0 = %v", ts[0])
	}
	if math.Abs(ts[1]-1/(2.0-0.5)) > 1e-12 {
		t.Errorf("T̄_1 = %v", ts[1])
	}
	ts2, err := sys.PerServerMeanResponseTime([]float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(ts2[0]) {
		t.Error("idle server should report NaN mean response time")
	}
}

func TestTheoremOneMinimumHomogeneous(t *testing.T) {
	// n identical computers: F* = n²μ/(nμ−λ); the equal split achieves it.
	sys := mustSystem(t, []float64{1, 1, 1, 1}, 1.0, 2.0)
	fstar, err := sys.TheoremOneMinimum()
	if err != nil {
		t.Fatal(err)
	}
	want := 16.0 / (4 - 2)
	if math.Abs(fstar-want) > 1e-12 {
		t.Errorf("F* = %v, want %v", fstar, want)
	}
	fEqual, err := sys.Objective([]float64{0.25, 0.25, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fEqual-fstar) > 1e-12 {
		t.Errorf("equal split F = %v, want F* = %v", fEqual, fstar)
	}
}

func TestTheoremOneMinimumSaturated(t *testing.T) {
	sys := mustSystem(t, []float64{1}, 1.0, 2.0)
	if _, err := sys.TheoremOneMinimum(); !errors.Is(err, ErrSaturated) {
		t.Errorf("err = %v, want ErrSaturated", err)
	}
}

// Property: F* from Theorem 1 lower-bounds F(α) for feasible allocations
// without zero entries (Theorem 1 is the unconstrained-sign optimum, so
// every non-negative feasible allocation has F ≥ F*).
func TestQuickTheoremOneIsLowerBound(t *testing.T) {
	f := func(seedA, seedB, seedC uint8) bool {
		speeds := []float64{
			1 + float64(seedA%10),
			1 + float64(seedB%10),
			1 + float64(seedC%10),
		}
		sys, err := NewSystem(speeds, 1.0, 0.6*(speeds[0]+speeds[1]+speeds[2]))
		if err != nil {
			return false
		}
		fstar, err := sys.TheoremOneMinimum()
		if err != nil {
			return false
		}
		// A few hand-rolled feasible allocations.
		tot := sys.TotalSpeed()
		allocs := [][]float64{
			{speeds[0] / tot, speeds[1] / tot, speeds[2] / tot},
			{1.0 / 3, 1.0 / 3, 1.0 / 3},
		}
		for _, a := range allocs {
			fa, err := sys.Objective(a)
			if err != nil {
				continue // may saturate a slow machine; skip
			}
			if fa < fstar-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMM1Helpers(t *testing.T) {
	if got := MM1PSResponseTime(10, 0.5); math.Abs(got-20) > 1e-12 {
		t.Errorf("PS response = %v, want 20", got)
	}
	if !math.IsInf(MM1PSResponseTime(1, 1), 1) {
		t.Error("saturated PS response should be +Inf")
	}
	if got := MM1MeanQueueLength(0.5, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("queue length = %v, want 1", got)
	}
	if !math.IsInf(MM1MeanResponseTime(2, 1), 1) {
		t.Error("saturated M/M/1 response should be +Inf")
	}
	if !math.IsInf(MM1MeanQueueLength(1, 1), 1) {
		t.Error("saturated M/M/1 queue should be +Inf")
	}
}

func TestCapacityAndUtilization(t *testing.T) {
	sys := mustSystem(t, []float64{2, 3}, 0.5, 1.0)
	if math.Abs(sys.Capacity()-2.5) > 1e-12 {
		t.Errorf("capacity = %v, want 2.5", sys.Capacity())
	}
	if math.Abs(sys.Utilization()-0.4) > 1e-12 {
		t.Errorf("utilization = %v, want 0.4", sys.Utilization())
	}
	if sys.N() != 2 {
		t.Errorf("N = %d", sys.N())
	}
}

func TestMG1FCFSPollaczekKhinchine(t *testing.T) {
	// Exponential service (E[S²] = 2 E[S]²) reduces P-K to the M/M/1
	// formula: E[T] = 1/(μ−λ).
	lambda, mean := 0.5, 1.0
	got := MG1FCFSMeanResponseTime(lambda, mean, 2*mean*mean)
	want := 1 / (1.0 - 0.5)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("P-K exponential = %v, want %v", got, want)
	}
	// Deterministic service (E[S²] = E[S]²) halves the waiting time.
	wExp := MG1FCFSMeanWait(lambda, mean, 2*mean*mean)
	wDet := MG1FCFSMeanWait(lambda, mean, mean*mean)
	if math.Abs(wDet-wExp/2) > 1e-12 {
		t.Errorf("deterministic wait %v, want half of exponential %v", wDet, wExp)
	}
	// Saturation.
	if !math.IsInf(MG1FCFSMeanWait(2, 1, 2), 1) || !math.IsInf(MG1FCFSMeanResponseTime(2, 1, 2), 1) {
		t.Error("saturated P-K should be +Inf")
	}
}

func TestMG1FCFSSecondMomentSensitivity(t *testing.T) {
	// Larger E[S²] at fixed mean strictly increases FCFS waiting — the
	// heavy-tail hazard that PS avoids.
	w1 := MG1FCFSMeanWait(0.5, 1, 2)
	w2 := MG1FCFSMeanWait(0.5, 1, 50)
	if w2 <= w1 {
		t.Errorf("wait did not grow with variance: %v vs %v", w1, w2)
	}
}

func TestMM1ResponseTimeQuantile(t *testing.T) {
	// Median of Exp(rate 0.5) = ln2/0.5.
	got := MM1ResponseTimeQuantile(0.5, 1.0, 0.5)
	want := math.Ln2 / 0.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("median = %v, want %v", got, want)
	}
	if MM1ResponseTimeQuantile(0.5, 1.0, 0) != 0 {
		t.Error("q=0 should be 0")
	}
	if !math.IsInf(MM1ResponseTimeQuantile(2, 1, 0.5), 1) {
		t.Error("saturated quantile should be +Inf")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("q=1 did not panic")
		}
	}()
	MM1ResponseTimeQuantile(0.5, 1, 1)
}
