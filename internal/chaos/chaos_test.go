package chaos

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"heterosched/internal/cli"
	"heterosched/internal/cluster"
	"heterosched/internal/probe"
)

// TestSpecRoundTrip: String/ParseSpec must be inverses over generated
// scenarios — the replay path depends on it.
func TestSpecRoundTrip(t *testing.T) {
	g := NewGenerator(nil)
	for k := 0; k < 200; k++ {
		s := g.Spec(k)
		text := s.String()
		back, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("scenario %d: ParseSpec(%q): %v", k, text, err)
		}
		if got := back.String(); got != text {
			t.Fatalf("scenario %d: round trip changed the spec:\n  first:  %s\n  second: %s", k, text, got)
		}
		if !reflect.DeepEqual(back, s) {
			t.Fatalf("scenario %d: round trip changed the struct: %+v vs %+v", k, back, s)
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"seed=1;seed=2;rho=0.5;dur=1000",
		"rho=NaN;dur=1000",
		"dur=+Inf;rho=0.5",
		"bogus=1",
		"seed",
		"stall=-5;rho=0.5;dur=1000",
		"insys=-1;rho=0.5;dur=1000",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// TestGeneratedSpecsBuild: every sampled scenario must pass the shared
// cli validators — a generator emitting unbuildable specs would turn
// the search into noise.
func TestGeneratedSpecsBuild(t *testing.T) {
	g := NewGenerator(nil)
	n := 200
	if testing.Short() {
		n = 50
	}
	for k := 0; k < n; k++ {
		s := g.Spec(k)
		if _, _, err := s.Build(); err != nil {
			t.Errorf("scenario %d does not build: %v\n  spec: %s", k, err, s.String())
		}
		if len(s.Layers()) == 0 {
			t.Errorf("scenario %d enables no fault layer: %s", k, s.String())
		}
	}
}

// TestGeneratorDeterministic: scenario k is a pure function of the
// search seed — same inputs, same spec, independent of call order.
func TestGeneratorDeterministic(t *testing.T) {
	a, b := NewGenerator(nil), NewGenerator(nil)
	for _, k := range []int{17, 3, 17, 99, 0} {
		if sa, sb := a.Spec(k).String(), b.Spec(k).String(); sa != sb {
			t.Fatalf("scenario %d not deterministic:\n  %s\n  %s", k, sa, sb)
		}
	}
}

// chaosOffSpec is the pristine paper model: no fault layer enabled.
func chaosOffSpec() Spec {
	return Spec{Seed: 11, Speeds: []float64{1, 1, 2, 10}, Rho: 0.6, Duration: 2e4, Policy: "ORR"}
}

// TestGoldenChaosOff locks the chaos-off path: executing an all-layers-
// off spec through the harness (probe event fan-out, in-system sampling,
// OnFinal ledger attached) must reproduce a direct cluster.Run of the
// identical configuration bit for bit, and both must match the golden
// values. A drift here means the instrumentation perturbs the
// simulation — the one thing a measurement layer must never do.
func TestGoldenChaosOff(t *testing.T) {
	spec := chaosOffSpec()
	rep, err := Execute(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("pristine run violated invariants: %v", rep.Violations)
	}

	cfg, pf, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The bare run: no probe, no sampling, no ledger.
	cfg.Probe = nil
	cfg.SampleInterval = 0
	bare, err := cluster.Run(cfg, pf())
	if err != nil {
		t.Fatal(err)
	}

	if rep.Result.MeanResponseTime != bare.MeanResponseTime ||
		rep.Result.MeanResponseRatio != bare.MeanResponseRatio ||
		rep.Result.Fairness != bare.Fairness ||
		rep.Result.Jobs != bare.Jobs ||
		rep.Result.GeneratedJobs != bare.GeneratedJobs {
		t.Errorf("instrumented run diverged from bare run:\n  instrumented: T=%v R=%v F=%v jobs=%d gen=%d\n  bare:         T=%v R=%v F=%v jobs=%d gen=%d",
			rep.Result.MeanResponseTime, rep.Result.MeanResponseRatio, rep.Result.Fairness, rep.Result.Jobs, rep.Result.GeneratedJobs,
			bare.MeanResponseTime, bare.MeanResponseRatio, bare.Fairness, bare.Jobs, bare.GeneratedJobs)
	}

	// Golden values captured at introduction (seed 11, speeds 1,1,2,10,
	// rho 0.6, duration 2e4, ORR, no warm-up, drained).
	const (
		goldenMeanT = 27.17453912556
		goldenMeanR = 0.4864144220966787
		goldenJobs  = 1964
	)
	if math.Abs(rep.Result.MeanResponseTime-goldenMeanT) > 1e-9 ||
		math.Abs(rep.Result.MeanResponseRatio-goldenMeanR) > 1e-12 ||
		rep.Result.Jobs != goldenJobs {
		t.Errorf("golden drift: T=%.13g R=%.16g jobs=%d (want T=%.13g R=%.16g jobs=%d)",
			rep.Result.MeanResponseTime, rep.Result.MeanResponseRatio, rep.Result.Jobs,
			goldenMeanT, goldenMeanR, goldenJobs)
	}
}

// TestChaosSweep is the in-tree chaos search: a seeded sweep of
// composed scenarios, each checked against the full invariant
// registry. Any violation is a real bug (or a broken invariant) —
// the failure message carries the replayable spec.
func TestChaosSweep(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 8
	}
	g := NewGenerator(nil)
	for k := 0; k < n; k++ {
		spec := g.Spec(k)
		rep, err := Execute(spec, Options{})
		if err != nil {
			t.Errorf("scenario %d failed to run: %v", k, err)
			continue
		}
		if rep.Failed() {
			t.Errorf("scenario %d violated invariants:\n  spec: %s", k, spec.String())
			for _, v := range rep.Violations {
				t.Errorf("  %s", v)
			}
		}
	}
}

// TestChaosCtrlSweep is the control-plane chaos search: a seeded sweep
// focused on the ctrl and net dimensions, so every scenario stresses
// the token/query/sync message paths (often composed with dispatch-side
// network faults), each checked against the full invariant registry —
// including the token lease, token conservation and exactly-once
// ledgers.
func TestChaosCtrlSweep(t *testing.T) {
	n := 50
	if testing.Short() {
		n = 10
	}
	cs, err := cli.ParseChaosSpec(fmt.Sprintf("seeds:%d,dims:net+ctrl,seed:9", n))
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(cs)
	ctrlScenarios := 0
	for k := 0; k < n; k++ {
		spec := g.Spec(k)
		if spec.Ctrl != "" {
			ctrlScenarios++
		}
		rep, err := Execute(spec, Options{})
		if err != nil {
			t.Errorf("scenario %d failed to run: %v", k, err)
			continue
		}
		if rep.Failed() {
			t.Errorf("scenario %d violated invariants:\n  spec: %s", k, spec.String())
			for _, v := range rep.Violations {
				t.Errorf("  %s", v)
			}
		}
	}
	// The sampler joins the ctrl layer with probability ~1/2; a sweep
	// where almost none participated would be testing nothing.
	if ctrlScenarios < n/4 {
		t.Errorf("only %d of %d scenarios enabled the control plane", ctrlScenarios, n)
	}
}

// TestSeededBugCaught: the injected double-OnFinal bug must be caught
// by the final-exactly-once invariant — this validates the harness can
// see a real violation, not just pass clean runs.
func TestSeededBugCaught(t *testing.T) {
	spec := NewGenerator(nil).Spec(3)
	rep, err := Execute(spec, Options{InjectDoubleFinal: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Violated(InvFinalOnce) {
		t.Fatalf("double-final injection not caught; violations: %v", rep.Violations)
	}
	// And the same spec without the bug is clean — the violation is the
	// injection, not the scenario.
	clean, err := Execute(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Failed() {
		t.Fatalf("clean replay of the same spec violated: %v", clean.Violations)
	}
}

// TestShrinkSeededBug: the shrinker must reduce a violating composed
// scenario to a minimal spec that still violates the same invariant,
// deterministically.
func TestShrinkSeededBug(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking runs many simulations")
	}
	spec := NewGenerator(nil).Spec(3)
	opts := Options{InjectDoubleFinal: 7}

	res, err := Shrink(spec, InvFinalOnce, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatalf("shrink made no progress from %s", spec.String())
	}
	if len(res.Spec.String()) >= len(spec.String()) {
		t.Errorf("shrunk spec is not smaller:\n  before: %s\n  after:  %s", spec.String(), res.Spec.String())
	}

	// The minimal reproducer replays: parse its string and re-execute.
	back, err := ParseSpec(res.Spec.String())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Execute(back, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Violated(InvFinalOnce) {
		t.Fatalf("shrunk spec no longer violates %s: %s", InvFinalOnce, res.Spec.String())
	}

	// Determinism: a second shrink from the same start lands on the
	// same spec with the same run count.
	res2, err := Shrink(spec, InvFinalOnce, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Spec.String() != res.Spec.String() || res2.Runs != res.Runs {
		t.Errorf("shrink not deterministic:\n  first:  %s (%d runs)\n  second: %s (%d runs)",
			res.Spec.String(), res.Runs, res2.Spec.String(), res2.Runs)
	}
}

// TestShrinkRejectsWrongInvariant: shrinking toward an invariant the
// spec does not violate must error instead of silently minimizing
// toward an arbitrary scenario.
func TestShrinkRejectsWrongInvariant(t *testing.T) {
	spec := chaosOffSpec()
	if _, err := Shrink(spec, InvQueueCap, Options{}); err == nil {
		t.Fatal("Shrink accepted a non-violating starting spec")
	}
}

func TestBreakerWatch(t *testing.T) {
	ev := func(target int, state string) *probe.Event {
		return &probe.Event{Kind: probe.EvBreaker, Target: target, Cause: state}
	}
	bw := newBreakerWatch()
	for _, e := range []*probe.Event{
		ev(0, "open"), ev(0, "half-open"), ev(0, "closed"), // legal cycle
		ev(1, "open"), ev(1, "half-open"), ev(1, "open"), // legal: probe failed
	} {
		if err := bw.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if len(bw.violations) != 0 {
		t.Fatalf("legal transitions flagged: %v", bw.violations)
	}

	bw = newBreakerWatch()
	for _, e := range []*probe.Event{
		ev(0, "half-open"),             // closed -> half-open is illegal
		ev(2, "open"), ev(2, "closed"), // open -> closed skips half-open
	} {
		bw.Write(e)
	}
	if len(bw.violations) != 2 {
		t.Fatalf("want 2 violations, got %v", bw.violations)
	}
	for _, v := range bw.violations {
		if v.Invariant != InvBreakerLegal {
			t.Errorf("violation attributed to %s, want %s", v.Invariant, InvBreakerLegal)
		}
	}
}

func TestCheckProgress(t *testing.T) {
	occupiedSeries := func(n int) []int64 {
		s := make([]int64, n)
		for i := range s {
			s[i] = 5
		}
		return s
	}

	// A stall: jobs in the system throughout, no terminal between t=100
	// and t=1000 with a 300 s horizon.
	v := checkProgress([]float64{100, 1000}, occupiedSeries(100), 10, 1000, 300, 0)
	if len(v) != 1 || v[0].Invariant != InvProgress {
		t.Fatalf("stall not flagged: %v", v)
	}

	// Same gap, but the system is empty during it — benign lull.
	idle := occupiedSeries(100)
	for i := 10; i < 100; i++ {
		idle[i] = 0
	}
	if v := checkProgress([]float64{100, 1000}, idle, 10, 1000, 300, 0); len(v) != 0 {
		t.Fatalf("idle gap flagged: %v", v)
	}

	// Steady terminals: no gap exceeds the horizon.
	var terms []float64
	for ti := 50.0; ti <= 1000; ti += 50 {
		terms = append(terms, ti)
	}
	if v := checkProgress(terms, occupiedSeries(100), 10, 1000, 300, 0); len(v) != 0 {
		t.Fatalf("steady progress flagged: %v", v)
	}

	// Terminals after the horizon are the drain phase — gaps there are
	// benign even with jobs present.
	if v := checkProgress([]float64{200, 400, 600, 800, 2500}, occupiedSeries(100), 10, 1000, 300, 0); len(v) != 0 {
		t.Fatalf("drain-phase gap flagged: %v", v)
	}

	// The in-system ceiling.
	over := occupiedSeries(100)
	over[40] = 1e6
	v = checkProgress(terms, over, 10, 1000, 300, 100)
	if len(v) != 1 || v[0].Invariant != InvProgress {
		t.Fatalf("ceiling breach not flagged: %v", v)
	}
}

// TestRegistryCoversViolationCodes: every verifier code maps to a
// registry invariant, and the registry names are unique.
func TestRegistryCoversViolationCodes(t *testing.T) {
	names := map[string]bool{}
	for _, inv := range Registry() {
		if names[inv.Name] {
			t.Errorf("duplicate registry name %s", inv.Name)
		}
		names[inv.Name] = true
	}
	for _, code := range []string{
		probe.VioJSON, probe.VioKind, probe.VioTime, probe.VioJobTime,
		probe.VioArrivalDup, probe.VioPreArrival, probe.VioPostTerminal,
		probe.VioNoDispatch, probe.VioUnterminated,
	} {
		if inv := invariantForCode(code); !names[inv] {
			t.Errorf("code %s maps to unregistered invariant %s", code, inv)
		}
	}
}

// TestGeneratorSamplesDispatchPlane: the search space must actually
// exercise the sharded-dispatch plane — over a modest sample, scenarios
// with K > 1 replicas, with counter sync, and with scalable policies
// all appear, and each such spec still builds and round-trips.
func TestGeneratorSamplesDispatchPlane(t *testing.T) {
	g := NewGenerator(nil)
	var sharded, synced, scalable int
	for k := 0; k < 200; k++ {
		s := g.Spec(k)
		if s.Dispatchers != "" {
			sharded++
		}
		if s.Sync != "" {
			synced++
		}
		switch {
		case strings.HasPrefix(s.Policy, "jsq"), strings.HasPrefix(s.Policy, "pod"), s.Policy == "jiq":
			scalable++
		}
	}
	if sharded == 0 || synced == 0 || scalable == 0 {
		t.Fatalf("200 scenarios sampled %d sharded / %d synced / %d scalable; every dimension must appear", sharded, synced, scalable)
	}
}

// TestCompoundDispatcherCrashSharded is the compound regression the
// sharding PR adds: dispatcher crashes (network/control-plane layer)
// composed with K > 1 dispatcher replicas and the exactly-once delivery
// loop. Buffered jobs replayed after a crash must route through the
// sharded dispatcher without violating conservation, final-exactly-once
// or the queue invariants, for both a static sharded plan with counter
// sync and a scalable JIQ fleet.
func TestCompoundDispatcherCrashSharded(t *testing.T) {
	base := Spec{
		Seed:     11,
		Rho:      0.6,
		Duration: 20000,
		Netfault: "loss:0.05,lat:5,crash:5000:200,down:buffer",
		AckTO:    "60:4",
		DState:   "acks",
	}
	cases := []struct {
		label       string
		policy      string
		dispatchers string
		sync        string
	}{
		{"static rr sync", "ORR", "4:rr", "500"},
		{"static hash no-sync", "ORR", "4:hash", ""},
		{"scalable jiq hash", "jiq", "4:hash", ""},
		{"scalable jsq2 rr", "jsq(2)", "2:rr", ""},
	}
	for _, c := range cases {
		s := base
		s.Policy = c.policy
		s.Dispatchers = c.dispatchers
		s.Sync = c.sync
		back, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("%s: round trip: %v", c.label, err)
		}
		rep, err := Execute(back, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.label, err)
		}
		if rep.Failed() {
			t.Errorf("%s violated invariants:\n  spec: %s", c.label, s.String())
			for _, v := range rep.Violations {
				t.Errorf("  %s", v)
			}
		}
		if rep.FinalJobs == 0 {
			t.Errorf("%s: no jobs checked", c.label)
		}
	}
}
