package chaos

import (
	"fmt"

	"heterosched/internal/probe"
)

// The invariant registry. Every chaos run is checked against all of
// these; a Violation names the invariant it broke, so the shrinker can
// minimize "still breaks THIS invariant" rather than "still breaks
// something".
const (
	// InvConservation: on a drained run, every generated arrival reaches
	// exactly one terminal outcome — GeneratedJobs == Σ Outcomes and
	// nothing is left in the system.
	InvConservation = "conservation"
	// InvFinalOnce: OnFinal fires exactly once per job, and no event
	// follows a job's terminal event except deduplicated stale
	// deliveries.
	InvFinalOnce = "final-exactly-once"
	// InvEventOrder: event times never regress, globally or per job.
	InvEventOrder = "event-order"
	// InvLifecycle: the per-job event grammar holds — one arrival first,
	// service starts and network retransmissions only after a dispatch.
	InvLifecycle = "event-lifecycle"
	// InvQueueCap: a bounded queue's occupancy high-water mark never
	// exceeds its configured capacity.
	InvQueueCap = "queue-cap"
	// InvBreakerLegal: per-computer breaker transitions follow the state
	// machine closed → open → half-open → {open, closed}.
	InvBreakerLegal = "breaker-legal"
	// InvProgress: the stall watchdog — while jobs are in the system,
	// terminal outcomes keep occurring within the stall horizon, and the
	// in-system count stays under its ceiling.
	InvProgress = "progress"
	// InvTokenLease: no dispatch ever spends an expired idle token — a
	// token-spend event at a time past its lease expiry is a bug in the
	// lease bookkeeping, whatever the link faults did.
	InvTokenLease = "token-lease"
	// InvTokenConserve: the token ledger balances up to loss — every
	// accepted token is eventually spent, expired, discarded, or still
	// held at the end of the run.
	InvTokenConserve = "token-conservation"
	// InvCtrlDedup: exactly-once token installation under duplication —
	// every delivered copy is either accepted or deduped, never both,
	// never neither.
	InvCtrlDedup = "ctrl-dedup"
)

// Invariant describes one registry entry.
type Invariant struct {
	Name string
	Desc string
}

// Registry lists every invariant a chaos run is checked against.
func Registry() []Invariant {
	return []Invariant{
		{InvConservation, "arrivals = terminal outcomes on a drained run; nothing stranded in the system"},
		{InvFinalOnce, "OnFinal exactly once per job; nothing after a terminal event but stale dedups"},
		{InvEventOrder, "event times never regress, globally or per job"},
		{InvLifecycle, "arrival first and once; service/resubmit/dup-deliver require a dispatch"},
		{InvQueueCap, "bounded-queue occupancy never exceeds the configured capacity"},
		{InvBreakerLegal, "breaker transitions follow closed → open → half-open → {open, closed}"},
		{InvProgress, "terminal outcomes keep occurring while jobs are in the system; in-system stays bounded"},
		{InvTokenLease, "no dispatch ever spends an idle token past its lease expiry"},
		{InvTokenConserve, "accepted tokens = spent + expired + discarded + extant (conservation up to loss)"},
		{InvCtrlDedup, "delivered token copies = accepted + deduped (exactly-once under duplication)"},
	}
}

// Violation is one broken invariant in one run.
type Violation struct {
	// Invariant is the registry name (Inv* constant).
	Invariant string
	// Detail is the human-readable evidence.
	Detail string
}

// String renders "invariant: detail".
func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// invariantForCode maps a probe verifier violation code onto the chaos
// registry entry it evidences.
func invariantForCode(code string) string {
	switch code {
	case probe.VioTime, probe.VioJobTime:
		return InvEventOrder
	case probe.VioPostTerminal:
		return InvFinalOnce
	case probe.VioUnterminated:
		return InvConservation
	default:
		return InvLifecycle
	}
}

// breakerWatch is an in-process event sink validating the breaker state
// machine per computer from EvBreaker transition events. The cluster
// emits one event per genuine transition, so any same-state repeat or
// illegal edge is a bookkeeping bug.
type breakerWatch struct {
	state      map[int]string
	violations []Violation
}

func newBreakerWatch() *breakerWatch {
	return &breakerWatch{state: map[int]string{}}
}

func (bw *breakerWatch) Write(e *probe.Event) error {
	if e.Kind != probe.EvBreaker {
		return nil
	}
	prev, ok := bw.state[e.Target]
	if !ok {
		prev = "closed" // breakers start closed
	}
	next := e.Cause
	legal := false
	switch prev {
	case "closed":
		legal = next == "open"
	case "open":
		legal = next == "half-open"
	case "half-open":
		legal = next == "open" || next == "closed"
	}
	if !legal {
		bw.violations = append(bw.violations, Violation{
			Invariant: InvBreakerLegal,
			Detail:    fmt.Sprintf("computer %d breaker went %s -> %s at t=%.6g", e.Target, prev, next, e.T),
		})
	}
	bw.state[e.Target] = next
	return nil
}

func (bw *breakerWatch) Flush() error { return nil }

// tokenWatch validates the token-lease invariant from EvTokenSpend
// events: Value carries the token's lease expiry (0 = no lease), so a
// spend strictly after its expiry means the dispatcher handed a job to
// a computer whose idleness claim had lapsed. A tiny epsilon absorbs
// the expiry-exactly-at-spend boundary the pop itself allows.
type tokenWatch struct {
	violations []Violation
}

func (tw *tokenWatch) Write(e *probe.Event) error {
	if e.Kind != probe.EvTokenSpend {
		return nil
	}
	if e.Value != 0 && e.T > e.Value*(1+1e-12) {
		tw.violations = append(tw.violations, Violation{
			Invariant: InvTokenLease,
			Detail:    fmt.Sprintf("computer %d token spent at t=%.6g past its lease expiry %.6g", e.Target, e.T, e.Value),
		})
	}
	return nil
}

func (tw *tokenWatch) Flush() error { return nil }

// terminalWatch records the times of terminal lifecycle events for the
// progress watchdog.
type terminalWatch struct {
	times []float64
}

func (tw *terminalWatch) Write(e *probe.Event) error {
	if e.Kind.Terminal() {
		tw.times = append(tw.times, e.T)
	}
	return nil
}

func (tw *terminalWatch) Flush() error { return nil }

// fanoutSink forwards every event to each attached writer in order.
type fanoutSink []probe.EventWriter

func (f fanoutSink) Write(e *probe.Event) error {
	for _, w := range f {
		if err := w.Write(e); err != nil {
			return err
		}
	}
	return nil
}

func (f fanoutSink) Flush() error {
	for _, w := range f {
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// checkProgress runs the stall watchdog over a finished run: gaps
// between consecutive terminal outcomes (including the run's edges)
// longer than the stall horizon are violations when the in-system
// series shows jobs present throughout the gap; and the in-system
// count must stay under its ceiling. terminals must be sorted
// ascending (they are: the event stream is time-ordered).
func checkProgress(terminals []float64, series []int64, sampleDT, duration, stall float64, maxInSystem int64) []Violation {
	var out []Violation
	if maxInSystem > 0 {
		for k, v := range series {
			if v > maxInSystem {
				out = append(out, Violation{
					Invariant: InvProgress,
					Detail:    fmt.Sprintf("in-system %d exceeds the ceiling %d at t=%.6g", v, maxInSystem, float64(k+1)*sampleDT),
				})
				break
			}
		}
	}
	if stall <= 0 || sampleDT <= 0 {
		return out
	}
	// occupied reports whether every in-system sample strictly inside
	// (from, to) is positive, with at least two samples as evidence —
	// a gap the sampler barely saw is not a stall verdict.
	occupied := func(from, to float64) bool {
		seen := 0
		for k, v := range series {
			t := float64(k+1) * sampleDT
			if t <= from {
				continue
			}
			if t >= to {
				break
			}
			if v <= 0 {
				return false
			}
			seen++
		}
		return seen >= 2
	}
	prev := 0.0
	check := func(from, to float64) {
		if to-from > stall && occupied(from, to) {
			out = append(out, Violation{
				Invariant: InvProgress,
				Detail:    fmt.Sprintf("no terminal outcome between t=%.6g and t=%.6g (stall horizon %.6g) with jobs in the system", from, to, stall),
			})
		}
	}
	for _, t := range terminals {
		if t > duration {
			break // drain phase: arrivals stopped, gaps there are benign
		}
		check(prev, t)
		prev = t
	}
	check(prev, duration)
	return out
}
