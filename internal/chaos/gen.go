package chaos

import (
	"fmt"
	"strconv"
	"strings"

	"heterosched/internal/cli"
	"heterosched/internal/rng"
)

// Generator samples composed chaos scenarios from a search
// specification. Scenario k is a pure function of (search seed, k):
// each draws from its own derived random substream, so a search can be
// resumed, parallelized or replayed scenario by scenario.
type Generator struct {
	cs cli.ChaosSearch
}

// NewGenerator returns a generator over the given search space.
// A nil search gets the parser defaults.
func NewGenerator(cs *cli.ChaosSearch) *Generator {
	if cs == nil {
		def, _ := cli.ParseChaosSpec("seeds:50")
		cs = def
	}
	return &Generator{cs: *cs}
}

// Scenarios returns the configured scenario count.
func (g *Generator) Scenarios() int { return g.cs.Scenarios }

// Spec samples scenario k. The sampled parameter ranges scale with the
// search intensity; the composition respects the cross-layer validity
// rules the cli parsers enforce (reject-when-full needs a queue cap,
// lossy links need an ack timeout, dstate needs a crash, ...). Load is
// kept strictly stable (peak effective rho ≤ 0.92) unless overload
// protection is part of the scenario, so an unprotected run cannot be
// flagged by the watchdog for honestly diverging queues.
func (g *Generator) Spec(k int) Spec {
	st := rng.New(g.cs.Seed).DeriveIndexed("chaos.scenario", k)
	in := g.cs.Intensity

	s := Spec{
		Seed:        g.cs.Seed ^ (uint64(k)*0x9E3779B97F4A7C15 + 1),
		Speeds:      append([]float64(nil), g.cs.Speeds...),
		Duration:    g.cs.Duration,
		Policy:      "ORR",
		Stall:       g.cs.Stall,
		MaxInSystem: g.cs.MaxInSystem,
	}

	// Pick the participating layers: each enabled dimension joins with
	// probability 0.7; at least one always participates.
	type dim struct {
		on   bool
		pick bool
	}
	dims := []dim{{on: g.cs.DimFaults}, {on: g.cs.DimOverload}, {on: g.cs.DimDrift}, {on: g.cs.DimNet}}
	any := false
	for i := range dims {
		if dims[i].on && st.Float64() < 0.7 {
			dims[i].pick = true
			any = true
		}
	}
	if !any {
		var avail []int
		for i := range dims {
			if dims[i].on {
				avail = append(avail, i)
			}
		}
		// A ctrl-only search (dims:ctrl) has no legacy dimension to
		// force; the control-plane layer below always participates then.
		if len(avail) > 0 {
			dims[avail[st.Intn(len(avail))]].pick = true
		}
	}
	faultsOn, overOn, driftOn, netOn := dims[0].pick, dims[1].pick, dims[2].pick, dims[3].pick

	// Overload first: whether the scenario is protected decides how hard
	// the load and drift may push.
	protected := false
	if overOn {
		protected = g.sampleOverload(&s, st, in)
	}

	// Base utilization: moderate for unprotected runs, pushier when the
	// protection layer is there to absorb it.
	if g.cs.Rho > 0 {
		s.Rho = g.cs.Rho
	} else {
		s.Rho = 0.30 + 0.45*in*st.Float64()
		if protected {
			s.Rho += 0.45 * in * st.Float64()
		}
	}

	if faultsOn {
		g.sampleFaults(&s, st, in)
	}
	if driftOn {
		g.sampleDrift(&s, st, in, protected)
	}
	if netOn {
		g.sampleNetfault(&s, st, in)
	}
	// Dispatch plane last, on its own derived substream so the fault-layer
	// draws above are byte-for-byte what earlier searches sampled.
	g.sampleDispatch(&s, rng.New(g.cs.Seed).DeriveIndexed("chaos.scenario.dispatch", k))
	// Control plane after the dispatch plane (it biases the policy toward
	// the state-querying family and needs to know the replica count),
	// again on its own substream so ctrl-off searches replay untouched.
	if g.cs.DimCtrl {
		legacy := g.cs.DimFaults || g.cs.DimOverload || g.cs.DimDrift || g.cs.DimNet
		g.sampleCtrl(&s, rng.New(g.cs.Seed).DeriveIndexed("chaos.scenario.ctrl", k), in, !legacy)
	}
	return s
}

// sampleCtrl draws the control-plane layer: loss/dup/latency on the
// token/query/sync message paths, token leases, the per-decision query
// timeout, and occasional computer-link or sync partitions. Because
// control faults only matter to policies that exchange control traffic,
// a participating scenario is biased toward the scalable state-querying
// family. The query timeout is always set — the validator requires one
// whenever control messages can vanish. always forces participation
// (ctrl-only searches).
func (g *Generator) sampleCtrl(s *Spec, st *rng.Stream, in float64, always bool) {
	if !always && st.Float64() >= 0.5 {
		return
	}
	// Bias the policy toward control-traffic users: jiq exercises the
	// token path, jsq/pod the query path; sharded statics with sync
	// exercise the frame path and are left as sampled.
	if st.Float64() < 0.6 {
		n := len(s.Speeds)
		pool := []string{"jiq"}
		for _, cand := range []struct {
			name string
			d    int
		}{{"jsq(2)", 2}, {"pod(2):speed", 2}, {"pod(3):alpha", 3}} {
			if cand.d <= n {
				pool = append(pool, cand.name)
			}
		}
		s.Policy = pool[st.Intn(len(pool))]
	}
	var items []string
	items = append(items, "loss:"+fnum6(0.30*in*st.Float64()))
	if st.Float64() < 0.5 {
		items = append(items, "dup:"+fnum6(0.15*in*st.Float64()))
	}
	if st.Float64() < 0.8 {
		items = append(items, "lat:"+fnum6(0.5+20*in*st.Float64()))
	}
	// Leases bound how long a lost or stale token can strand a computer;
	// sampled often, but deliberately not always — lease-less token loss
	// is a degradation the invariants must survive, not a config error.
	if st.Float64() < 0.7 {
		items = append(items, "lease:"+fnum6(s.Duration*(0.005+0.02*st.Float64())))
	}
	items = append(items, "qto:"+fnum6(10+90*st.Float64()))
	if st.Float64() < 0.3 {
		from := s.Duration * 0.6 * st.Float64()
		to := from + s.Duration*(0.02+0.08*in*st.Float64())
		items = append(items, fmt.Sprintf("part:%s:%s:%d", fnum6(from), fnum6(to), st.Intn(len(s.Speeds))))
	}
	if s.Dispatchers != "" && s.Sync != "" && st.Float64() < 0.4 {
		if k, _, err := cli.ParseDispatchersSpec(s.Dispatchers); err == nil && k > 1 {
			from := s.Duration * 0.6 * st.Float64()
			to := from + s.Duration*(0.05+0.15*st.Float64())
			items = append(items, fmt.Sprintf("dpart:%s:%s:%d", fnum6(from), fnum6(to), st.Intn(k)))
		}
	}
	s.Ctrl = strings.Join(items, ",")
}

// sampleDispatch draws the dispatch plane: sometimes a non-default
// policy (the other static strategies and the scalable state-querying
// family), sometimes K > 1 dispatcher replicas with rr or hash routing
// and an optional counter-sync period. The centralized dynamic policies
// (LL, LL*, JSQ2) are deliberately absent — they reject sharding, and
// their fault interplay is covered by their own layer tests.
func (g *Generator) sampleDispatch(s *Spec, st *rng.Stream) {
	if st.Float64() < 0.4 {
		n := len(s.Speeds)
		pool := []string{"WRR", "WRAN", "jiq"}
		// The sampled-width policies need d computers; keep the spec
		// buildable for narrow speed vectors.
		for _, cand := range []struct {
			name string
			d    int
		}{{"jsq(2)", 2}, {"jsq(3)", 3}, {"pod(2):speed", 2}, {"pod(2):alpha", 2}} {
			if cand.d <= n {
				pool = append(pool, cand.name)
			}
		}
		s.Policy = pool[st.Intn(len(pool))]
	}
	if st.Float64() < 0.5 {
		k := []int{2, 4, 8}[st.Intn(3)]
		by := "rr"
		if st.Float64() < 0.5 {
			by = "hash"
		}
		s.Dispatchers = fmt.Sprintf("%d:%s", k, by)
		if st.Float64() < 0.4 {
			s.Sync = fnum6(s.Duration * (0.01 + 0.1*st.Float64()))
		}
	}
}

// sampleOverload draws the overload-protection layer; reports whether
// the combination actually bounds the load (admission control or
// bounded queues).
func (g *Generator) sampleOverload(s *Spec, st *rng.Stream, in float64) bool {
	protected := false
	if st.Float64() < 0.6 {
		capv := 10 + st.Intn(90)
		drop := "newest"
		if st.Float64() < 0.5 {
			drop = "oldest"
		}
		s.QCap = fmt.Sprintf("%d:%s", capv, drop)
		protected = true
	}
	switch r := st.Float64(); {
	case r < 0.35 && s.QCap != "":
		s.Admit = "reject-when-full"
	case r < 0.6:
		// Token rate relative to the fleet's service capacity in jobs/s;
		// sometimes clamping, sometimes slack.
		var sum float64
		for _, v := range s.Speeds {
			sum += v
		}
		rate := (0.5 + 0.6*st.Float64()) * sum / 76.8
		burst := 1 + st.Intn(20)
		s.Admit = fmt.Sprintf("token-bucket:%s:%d", strconv.FormatFloat(rate, 'g', 6, 64), burst)
		protected = true
	}
	if st.Float64() < 0.4 {
		mean := 300 + 2400*st.Float64()
		action := "kill"
		if st.Float64() < 0.4 {
			action = "mark"
		}
		s.Deadline = fmt.Sprintf("exp:%s:%s", strconv.FormatFloat(mean, 'g', 6, 64), action)
	}
	if st.Float64() < 0.5 {
		s.Timeout = 150 + 450*st.Float64()
		s.Retry = 1 + st.Intn(3)
	}
	if st.Float64() < 0.4 {
		consec := 3 + st.Intn(8)
		cooldown := 200 + 800*st.Float64()
		s.Breaker = fmt.Sprintf("%d:%s", consec, strconv.FormatFloat(cooldown, 'g', 6, 64))
	}
	if s.QCap == "" && s.Admit == "" && s.Deadline == "" && s.Timeout == 0 && s.Breaker == "" {
		s.QCap = fmt.Sprintf("%d:newest", 20+st.Intn(60))
		protected = true
	}
	return protected
}

// sampleFaults draws the compute-failure layer: per-computer MTBF/MTTR
// and a job fate. Intensity raises the failure count and repair times.
func (g *Generator) sampleFaults(s *Spec, st *rng.Stream, in float64) {
	perRun := 1 + 9*in*st.Float64() // mean failures per computer per run
	s.MTBF = s.Duration / perRun
	s.MTTR = s.MTBF * (0.02 + 0.25*in*st.Float64())
	s.Fate = []string{"lost", "restart", "resume", "requeue"}[st.Intn(4)]
	s.Retries = 1 + st.Intn(4)
	if st.Float64() < 0.5 {
		s.Detect = s.MTTR * 0.2 * st.Float64()
	}
}

// sampleDrift draws the parameter-drift layer. Arrival-rate factors are
// capped so the peak effective utilization stays below 0.92 on
// unprotected runs; misestimation (planner lies) is always safe to
// compose.
func (g *Generator) sampleDrift(s *Spec, st *rng.Stream, in float64, protected bool) {
	capRho := 0.92
	maxF := 1.5
	if !protected && s.Rho > 0 {
		if m := capRho / s.Rho; m < maxF {
			maxF = m
		}
	}
	var items []string
	switch r := st.Float64(); {
	case r < 0.4:
		at := s.Duration * (0.2 + 0.4*st.Float64())
		f := 0.6 + (maxF-0.6)*st.Float64()
		items = append(items, fmt.Sprintf("lstep:%s:%s", fnum6(at), fnum6(f)))
	case r < 0.6:
		from := s.Duration * (0.1 + 0.3*st.Float64())
		to := from + s.Duration*0.2
		f := 0.6 + (maxF-0.6)*st.Float64()
		items = append(items, fmt.Sprintf("lramp:%s:%s:%s", fnum6(from), fnum6(to), fnum6(f)))
	case r < 0.8:
		period := s.Duration * (0.1 + 0.2*st.Float64())
		ampCap := maxF - 1
		if ampCap > 0.4 {
			ampCap = 0.4
		}
		if ampCap > 0.02 {
			amp := ampCap * st.Float64()
			items = append(items, fmt.Sprintf("lcycle:%s:%s", fnum6(period), fnum6(amp)))
		}
	default:
		// Speed step: slowing computers raises effective rho, so the
		// slowdown floor respects the same stability cap.
		at := s.Duration * (0.2 + 0.4*st.Float64())
		lo := 0.5
		if !protected && s.Rho > 0 && s.Rho/capRho > lo {
			lo = s.Rho / capRho
		}
		f := lo + (1-lo)*st.Float64()
		if st.Float64() < 0.5 {
			items = append(items, fmt.Sprintf("sstep:%s:%s", fnum6(at), fnum6(f)))
		} else {
			idx := st.Intn(len(s.Speeds))
			// A single slowed computer can congest locally under a static
			// plan; keep the per-computer slowdown gentle when unprotected.
			if !protected && f < 0.7 {
				f = 0.7 + 0.3*st.Float64()
			}
			items = append(items, fmt.Sprintf("sstep:%s:%s:%d", fnum6(at), fnum6(f), idx))
		}
	}
	if st.Float64() < 0.3 {
		rhoErr := (st.Float64()*2 - 1) * 0.2 * in
		items = append(items, fmt.Sprintf("mis:%s", fnum6(rhoErr)))
	}
	s.Drift = strings.Join(items, ",")
}

// sampleNetfault draws the network/control-plane layer: link loss,
// duplication and latency, optional dispatcher crashes with a recovery
// policy, and optional partition windows. Any lossy or crashing
// network gets the ack/resubmission loop (the validator requires it).
func (g *Generator) sampleNetfault(s *Spec, st *rng.Stream, in float64) {
	var items []string
	loss := 0.25 * in * st.Float64()
	dup := 0.10 * in * st.Float64()
	lat := 0.5 + 40*in*st.Float64()
	items = append(items, fmt.Sprintf("loss:%s", fnum6(loss)))
	if st.Float64() < 0.6 {
		items = append(items, fmt.Sprintf("dup:%s", fnum6(dup)))
	}
	items = append(items, fmt.Sprintf("lat:%s", fnum6(lat)))

	crashed := st.Float64() < 0.5
	if crashed {
		mtbf := s.Duration / (1 + 3*in*st.Float64())
		mttr := s.Duration * (0.005 + 0.02*in*st.Float64())
		items = append(items, fmt.Sprintf("crash:%s:%s", fnum6(mtbf), fnum6(mttr)))
		switch r := st.Float64(); {
		case r < 0.3:
			items = append(items, "down:drop")
		case r < 0.8:
			if st.Float64() < 0.5 {
				items = append(items, fmt.Sprintf("down:buffer:%d", 64+st.Intn(512)))
			} else {
				items = append(items, "down:buffer")
			}
		default:
			items = append(items, "down:failover")
		}
		switch r := st.Float64(); {
		case r < 0.33:
			s.DState = "acks"
		case r < 0.66:
			s.DState = fmt.Sprintf("ckpt:%s", fnum6(s.Duration*(0.05+0.1*st.Float64())))
		}
	}
	if st.Float64() < 0.4 {
		from := s.Duration * 0.7 * st.Float64()
		to := from + s.Duration*(0.02+0.08*in*st.Float64())
		if st.Float64() < 0.5 && len(s.Speeds) > 1 {
			links := []string{strconv.Itoa(st.Intn(len(s.Speeds)))}
			if st.Float64() < 0.5 {
				links = append(links, strconv.Itoa(st.Intn(len(s.Speeds))))
			}
			items = append(items, fmt.Sprintf("part:%s:%s:%s", fnum6(from), fnum6(to), strings.Join(links, "+")))
		} else {
			items = append(items, fmt.Sprintf("part:%s:%s", fnum6(from), fnum6(to)))
		}
	}
	s.Netfault = strings.Join(items, ",")
	// The reliability loop: required with loss/dup/failover, and always
	// sound — resubmission with dedup is exactly what the invariants
	// must survive.
	to := 20 + 80*st.Float64()
	budget := 3 + st.Intn(4)
	s.AckTO = fmt.Sprintf("%s:%d", fnum6(to), budget)
}

// fnum6 formats a sampled float compactly (6 significant digits is
// plenty for scenario parameters and keeps spec strings readable).
func fnum6(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
