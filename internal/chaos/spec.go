// Package chaos is the deterministic chaos-search engine: it samples
// composed fault scenarios from the cross-product of the repository's
// fault layers (compute faults × overload protection × parameter drift
// × network/control-plane faults), runs each against the cluster
// simulator with an in-process invariant registry attached, and
// delta-debugs any violating scenario down to a minimal reproducer.
//
// The paper's model is the happy path: a perfect dispatcher, perfect
// links, static parameters. Each robustness layer was stress-tested on
// its own when it landed; this package searches the *composition*,
// which is where schedulers actually break. Everything is seeded — the
// same spec string replays the same run, event for event.
package chaos

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"heterosched/internal/cli"
	"heterosched/internal/cluster"
)

// Spec is one fully-determined chaos scenario. The workload fields are
// typed; the four fault layers are carried in the exact spec-string
// grammars of the front-end flags (-mtbf/-fate, -qcap/-admit/...,
// -drift, -netfault/-ackto/-dstate) and parsed by the same
// internal/cli parsers, so a scenario is trivially reproducible from
// the command line and the shrinker can drop grammar items
// one by one. The zero value of a layer ("" or 0) means the layer is
// off; an all-off spec runs the pristine paper model.
type Spec struct {
	// Seed drives every random stream of the run.
	Seed uint64
	// Speeds is the relative speed vector (default 1,1,2,10).
	Speeds []float64
	// Rho is the offered utilization.
	Rho float64
	// Duration is the horizon in simulated seconds; every scenario
	// drains past it so conservation is checkable.
	Duration float64
	// Policy is the dispatch policy mnemonic (default ORR).
	Policy string
	// Dispatchers is the replica spec in the -dispatchers grammar
	// ("K[:rr|hash]"); empty means the single central dispatcher.
	Dispatchers string
	// Sync is the counter-sync period in the -sync grammar ("never" or
	// seconds); empty means never.
	Sync string

	// Compute-fault layer (cli.FaultParams grammar).
	MTBF, MTTR float64
	Fate       string
	Retries    int
	Detect     float64

	// Overload-protection layer (cli.OverloadParams grammar).
	QCap, Admit, Deadline, Backoff, Breaker string
	Timeout                                 float64
	Retry                                   int

	// Parameter-drift layer (cli.DriftParams grammar).
	Drift string

	// Network-fault layer (cli.NetfaultParams grammar).
	Netfault, AckTO, DState string

	// Control-plane layer (cli.CtrlParams grammar): faults on the
	// token/query/sync message paths of the scalable policies and the
	// sharded counter-sync.
	Ctrl string

	// Watchdog bounds, serialized so a reproducer is self-contained.
	// Stall 0 and MaxInSystem 0 pick defaults at Execute time.
	Stall       float64
	MaxInSystem int64
}

// fnum formats a float the way the spec grammar round-trips it.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// String serializes the spec as ";"-separated key=value pairs, layer
// values verbatim in their flag grammars (they may themselves contain
// commas and colons, which is why the item separator is ";"). Only
// non-default fields are emitted; ParseSpec(s.String()) reproduces s.
func (s Spec) String() string {
	var items []string
	add := func(k, v string) { items = append(items, k+"="+v) }
	add("seed", strconv.FormatUint(s.Seed, 10))
	if len(s.Speeds) > 0 {
		sp := make([]string, len(s.Speeds))
		for i, v := range s.Speeds {
			sp[i] = fnum(v)
		}
		add("speeds", strings.Join(sp, ","))
	}
	add("rho", fnum(s.Rho))
	add("dur", fnum(s.Duration))
	if s.Policy != "" {
		add("policy", s.Policy)
	}
	if s.Dispatchers != "" {
		add("dispatchers", s.Dispatchers)
	}
	if s.Sync != "" {
		add("sync", s.Sync)
	}
	if s.MTBF > 0 {
		add("mtbf", fnum(s.MTBF))
		add("mttr", fnum(s.MTTR))
		if s.Fate != "" {
			add("fate", s.Fate)
		}
		add("retries", strconv.Itoa(s.Retries))
		if s.Detect > 0 {
			add("detect", fnum(s.Detect))
		}
	}
	if s.QCap != "" {
		add("qcap", s.QCap)
	}
	if s.Admit != "" {
		add("admit", s.Admit)
	}
	if s.Deadline != "" {
		add("deadline", s.Deadline)
	}
	if s.Timeout > 0 {
		add("timeout", fnum(s.Timeout))
	}
	if s.Retry > 0 {
		add("retry", strconv.Itoa(s.Retry))
	}
	if s.Backoff != "" {
		add("backoff", s.Backoff)
	}
	if s.Breaker != "" {
		add("breaker", s.Breaker)
	}
	if s.Drift != "" {
		add("drift", s.Drift)
	}
	if s.Netfault != "" {
		add("netfault", s.Netfault)
	}
	if s.AckTO != "" {
		add("ackto", s.AckTO)
	}
	if s.DState != "" {
		add("dstate", s.DState)
	}
	if s.Ctrl != "" {
		add("ctrl", s.Ctrl)
	}
	if s.Stall > 0 {
		add("stall", fnum(s.Stall))
	}
	if s.MaxInSystem > 0 {
		add("insys", strconv.FormatInt(s.MaxInSystem, 10))
	}
	return strings.Join(items, ";")
}

// ParseSpec parses a serialized scenario back into a Spec. The layer
// values are stored verbatim; deep validation happens in Build, exactly
// as the front ends do it.
func ParseSpec(s string) (Spec, error) {
	var sp Spec
	s = strings.TrimSpace(s)
	if s == "" {
		return sp, fmt.Errorf("empty chaos scenario spec")
	}
	seen := map[string]bool{}
	for _, item := range strings.Split(s, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return sp, fmt.Errorf("bad scenario item %q (want key=value)", item)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if seen[key] {
			return sp, fmt.Errorf("duplicate scenario key %q", key)
		}
		seen[key] = true
		num := func(what string) (float64, error) {
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return 0, fmt.Errorf("bad %s %q: %v", what, val, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("%s %v must be finite", what, v)
			}
			return v, nil
		}
		var err error
		switch key {
		case "seed":
			if sp.Seed, err = strconv.ParseUint(val, 10, 64); err != nil {
				return sp, fmt.Errorf("bad seed %q: %v", val, err)
			}
		case "speeds":
			if sp.Speeds, err = cli.ParseSpeeds(val); err != nil {
				return sp, err
			}
		case "rho":
			if sp.Rho, err = num("rho"); err != nil {
				return sp, err
			}
		case "dur":
			if sp.Duration, err = num("duration"); err != nil {
				return sp, err
			}
		case "policy":
			sp.Policy = val
		case "dispatchers":
			sp.Dispatchers = val
		case "sync":
			sp.Sync = val
		case "mtbf":
			if sp.MTBF, err = num("mtbf"); err != nil {
				return sp, err
			}
		case "mttr":
			if sp.MTTR, err = num("mttr"); err != nil {
				return sp, err
			}
		case "fate":
			sp.Fate = val
		case "retries":
			if sp.Retries, err = strconv.Atoi(val); err != nil {
				return sp, fmt.Errorf("bad retries %q: %v", val, err)
			}
		case "detect":
			if sp.Detect, err = num("detect"); err != nil {
				return sp, err
			}
		case "qcap":
			sp.QCap = val
		case "admit":
			sp.Admit = val
		case "deadline":
			sp.Deadline = val
		case "timeout":
			if sp.Timeout, err = num("timeout"); err != nil {
				return sp, err
			}
		case "retry":
			if sp.Retry, err = strconv.Atoi(val); err != nil {
				return sp, fmt.Errorf("bad retry budget %q: %v", val, err)
			}
		case "backoff":
			sp.Backoff = val
		case "breaker":
			sp.Breaker = val
		case "drift":
			sp.Drift = val
		case "netfault":
			sp.Netfault = val
		case "ackto":
			sp.AckTO = val
		case "dstate":
			sp.DState = val
		case "ctrl":
			sp.Ctrl = val
		case "stall":
			if sp.Stall, err = num("stall horizon"); err != nil {
				return sp, err
			}
			if sp.Stall < 0 {
				return sp, fmt.Errorf("stall horizon %v must be >= 0", sp.Stall)
			}
		case "insys":
			if sp.MaxInSystem, err = strconv.ParseInt(val, 10, 64); err != nil {
				return sp, fmt.Errorf("bad in-system cap %q: %v", val, err)
			}
			if sp.MaxInSystem < 0 {
				return sp, fmt.Errorf("in-system cap %d must be >= 0", sp.MaxInSystem)
			}
		default:
			return sp, fmt.Errorf("unknown scenario key %q", key)
		}
	}
	return sp, nil
}

// Layers returns the names of the fault layers this spec enables, in
// registry order (faults, overload, drift, netfault).
func (s Spec) Layers() []string {
	var l []string
	if s.MTBF > 0 {
		l = append(l, "faults")
	}
	if s.QCap != "" || s.Admit != "" || s.Deadline != "" || s.Timeout > 0 || s.Breaker != "" {
		l = append(l, "overload")
	}
	if s.Drift != "" {
		l = append(l, "drift")
	}
	if s.Netfault != "" || s.AckTO != "" || s.DState != "" {
		l = append(l, "netfault")
	}
	if s.Ctrl != "" {
		l = append(l, "ctrl")
	}
	return l
}

// Build assembles the cluster configuration and policy factory for this
// scenario, running every layer through the shared cli parsers and
// validators — a spec that Builds is a spec the front ends would
// accept. The run drains (conservation needs every arrival to resolve)
// and skips warm-up (the OnFinal ledger must cover every job).
func (s Spec) Build() (cluster.Config, cluster.PolicyFactory, error) {
	var cfg cluster.Config
	speeds := s.Speeds
	if len(speeds) == 0 {
		speeds = []float64{1, 1, 2, 10}
	}
	if !(s.Rho >= 0) || s.Rho > cli.MaxRho {
		return cfg, nil, fmt.Errorf("rho %v outside [0, %v]", s.Rho, float64(cli.MaxRho))
	}
	if !(s.Duration > 0) || math.IsInf(s.Duration, 0) {
		return cfg, nil, fmt.Errorf("duration %v must be positive and finite", s.Duration)
	}

	fate := s.Fate
	if fate == "" {
		fate = "requeue"
	}
	fc, realloc, err := cli.FaultParams{
		MTBF: s.MTBF, MTTR: s.MTTR, Fate: fate, Retries: s.Retries,
		Detect: s.Detect, Realloc: "stale",
	}.Build()
	if err != nil {
		return cfg, nil, err
	}
	oc, err := cli.OverloadParams{
		QCap: s.QCap, Admit: s.Admit, Deadline: s.Deadline,
		Timeout: s.Timeout, Retry: s.Retry, Backoff: s.Backoff, Breaker: s.Breaker,
	}.Build()
	if err != nil {
		return cfg, nil, err
	}
	dc, _, err := cli.DriftParams{Drift: s.Drift}.Build(len(speeds))
	if err != nil {
		return cfg, nil, err
	}
	nc, err := cli.NetfaultParams{Netfault: s.Netfault, AckTO: s.AckTO, DState: s.DState}.Build(len(speeds))
	if err != nil {
		return cfg, nil, err
	}

	policyName := s.Policy
	if policyName == "" {
		policyName = "ORR"
	}
	sharding, err := cli.ParseShardingSpecs(s.Dispatchers, s.Sync)
	if err != nil {
		return cfg, nil, err
	}
	pf, err := cli.ParsePolicy(policyName, cli.PolicyOptions{
		Realloc: realloc, Faults: fc, Computers: len(speeds), Sharding: sharding,
	})
	if err != nil {
		return cfg, nil, err
	}
	replicas := sharding.Dispatchers
	if replicas < 1 {
		replicas = 1
	}
	cc, err := cli.CtrlParams{Ctrl: s.Ctrl}.Build(len(speeds), replicas)
	if err != nil {
		return cfg, nil, err
	}

	drain := true
	cfg = cluster.Config{
		Speeds:         speeds,
		Utilization:    s.Rho,
		Duration:       s.Duration,
		Seed:           s.Seed,
		WarmupFraction: -1,
		Drain:          &drain,
		Faults:         fc,
		Overload:       oc,
		Drift:          dc,
		Netfault:       nc,
		Ctrl:           cc,
	}
	return cfg, pf, nil
}

// queueCap returns the bounded-queue capacity this spec configures, or
// 0 when queues are unbounded (the queue-cap invariant is vacuous).
func (s Spec) queueCap() int {
	if s.QCap == "" {
		return 0
	}
	capv, _, err := cli.ParseQueueCapSpec(s.QCap)
	if err != nil {
		return 0
	}
	return capv
}
