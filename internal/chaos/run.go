package chaos

import (
	"fmt"

	"heterosched/internal/cluster"
	"heterosched/internal/dist"
	"heterosched/internal/probe"
	"heterosched/internal/sim"
)

// Options tune one chaos execution.
type Options struct {
	// Events, when non-nil, additionally receives the full lifecycle
	// event stream (e.g. a probe.JSONLWriter over a file, for replay
	// artifacts). The in-process checkers run regardless.
	Events probe.EventWriter
	// InjectDoubleFinal is a test-only seeded bug: every job whose ID is
	// a multiple of this value has its OnFinal accounting fire twice,
	// violating final-exactly-once on purpose. It exists to prove the
	// harness catches and shrinks real violations (see TestShrinkSeededBug
	// and cmd/chaos -inject-double-final); 0 in any honest run.
	InjectDoubleFinal int64
}

// Report is the outcome of one checked chaos run.
type Report struct {
	// Spec is the scenario that ran.
	Spec Spec
	// Result is the cluster run result.
	Result *cluster.Result
	// EventStats summarizes the in-process event verification.
	EventStats *probe.VerifyStats
	// Violations lists every broken invariant, empty on a clean run.
	Violations []Violation
	// FinalJobs is the number of distinct jobs the OnFinal ledger saw.
	FinalJobs int64
}

// Failed reports whether any invariant was violated.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// Violated reports whether the named invariant was broken.
func (r *Report) Violated(name string) bool {
	for _, v := range r.Violations {
		if v.Invariant == name {
			return true
		}
	}
	return false
}

// ViolatedNames returns the set of broken invariant names.
func (r *Report) ViolatedNames() map[string]bool {
	m := map[string]bool{}
	for _, v := range r.Violations {
		m[v.Invariant] = true
	}
	return m
}

// stallHorizon resolves the watchdog horizon: explicit, or half the
// scenario duration — generous enough that legitimate lulls (a long
// partition, a crashed dispatcher waiting out its MTTR) do not trip it,
// tight enough to flag a run that stopped finishing jobs wholesale.
func (s Spec) stallHorizon() float64 {
	if s.Stall > 0 {
		return s.Stall
	}
	return s.Duration / 2
}

// inSystemCeiling resolves the watchdog's in-system bound: explicit, or
// twice the expected total arrival count (the in-system count can never
// legitimately exceed the number of generated jobs, so the default only
// trips on accounting corruption — a negative wrap, a leak of recycled
// jobs — not on honest queue growth).
func (s Spec) inSystemCeiling() int64 {
	if s.MaxInSystem > 0 {
		return s.MaxInSystem
	}
	var sum float64
	for _, v := range s.Speeds {
		sum += v
	}
	if sum == 0 {
		sum = 14 // default 1,1,2,10
	}
	lambda := s.Rho * sum / dist.PaperJobSize().Mean()
	n := int64(2 * lambda * s.Duration)
	if n < 1000 {
		n = 1000
	}
	return n
}

// Execute runs one scenario with the full invariant registry attached
// in-process: a probe event sink feeds the lifecycle verifier, the
// breaker state-machine watch and the terminal-progress watch, while
// the cluster result supplies the conservation ledger and queue
// high-water marks. No JSONL export is needed (attach Options.Events
// for a replay artifact). The returned Report carries every violation;
// err is reserved for specs that fail to build or run at all.
func Execute(spec Spec, opts Options) (*Report, error) {
	cfg, pf, err := spec.Build()
	if err != nil {
		return nil, fmt.Errorf("chaos: spec %q: %v", spec.String(), err)
	}

	stall := spec.stallHorizon()
	sampleDT := stall / 8
	if min := spec.Duration / 2000; sampleDT < min {
		sampleDT = min
	}
	verifier := probe.NewVerifier()
	bw := newBreakerWatch()
	tw := &terminalWatch{}
	tok := &tokenWatch{}
	sinks := fanoutSink{verifier, bw, tw, tok}
	if opts.Events != nil {
		sinks = append(sinks, opts.Events)
	}
	pb, err := probe.New(probe.Options{Events: sinks})
	if err != nil {
		return nil, err
	}
	cfg.Probe = pb
	cfg.SampleInterval = sampleDT

	ledger := map[int64]int64{}
	cfg.OnFinal = func(j *sim.Job, o cluster.Outcome) {
		ledger[j.ID]++
		if opts.InjectDoubleFinal > 0 && j.ID%opts.InjectDoubleFinal == 0 {
			ledger[j.ID]++
		}
	}

	res, err := cluster.Run(cfg, pf())
	if err != nil {
		return nil, fmt.Errorf("chaos: spec %q: %v", spec.String(), err)
	}
	if err := sinks.Flush(); err != nil {
		return nil, err
	}

	rep := &Report{Spec: spec, Result: res, FinalJobs: int64(len(ledger))}

	// conservation: every generated arrival reached exactly one terminal
	// outcome (the run drained), and nothing is left in the system.
	var terminated int64
	for _, c := range res.Outcomes {
		terminated += c
	}
	if terminated != res.GeneratedJobs {
		rep.add(InvConservation, "generated %d jobs but recorded %d terminal outcomes", res.GeneratedJobs, terminated)
	}
	if res.FinalInSystem != 0 {
		rep.add(InvConservation, "%d jobs still in the system after the drain", res.FinalInSystem)
	}

	// final-exactly-once: the OnFinal ledger (warm-up is zero, so every
	// job is covered).
	var dupJobs, dupCalls int64
	firstDup := int64(-1)
	for id, c := range ledger {
		if c != 1 {
			dupJobs++
			dupCalls += c - 1
			if firstDup < 0 || id < firstDup {
				firstDup = id
			}
		}
	}
	if dupJobs > 0 {
		rep.add(InvFinalOnce, "%d jobs saw multiple OnFinal calls (%d extra calls; first: job %d)", dupJobs, dupCalls, firstDup)
	}
	if rep.FinalJobs != terminated {
		rep.add(InvFinalOnce, "OnFinal covered %d jobs but %d terminal outcomes were recorded", rep.FinalJobs, terminated)
	}

	// Event-stream invariants from the in-process verifier.
	rep.EventStats = verifier.Finish(true)
	for _, v := range rep.EventStats.Details {
		rep.Violations = append(rep.Violations, Violation{Invariant: invariantForCode(v.Code), Detail: v.Msg})
	}
	if extra := rep.EventStats.Violations - int64(len(rep.EventStats.Details)); extra > 0 {
		rep.add(InvLifecycle, "%d further event-stream violations truncated", extra)
	}

	// queue-cap: the bounded queues' high-water marks.
	if qcap := spec.queueCap(); qcap > 0 && res.Overload != nil {
		for i, m := range res.Overload.MaxOccupancy {
			if m > qcap {
				rep.add(InvQueueCap, "computer %d held %d jobs with queue cap %d", i, m, qcap)
			}
		}
	}

	rep.Violations = append(rep.Violations, bw.violations...)
	rep.Violations = append(rep.Violations, tok.violations...)

	// Control-plane ledgers: conservation up to loss and exactly-once
	// under duplication, straight from the run's token counters.
	if cs := res.Ctrl; cs != nil {
		if held := cs.TokensSpent + cs.TokensExpired + cs.TokensDiscarded + cs.TokensExtant; held != cs.TokensAccepted {
			rep.add(InvTokenConserve, "accepted %d tokens but spent %d + expired %d + discarded %d + extant %d = %d",
				cs.TokensAccepted, cs.TokensSpent, cs.TokensExpired, cs.TokensDiscarded, cs.TokensExtant, held)
		}
		if cs.TokensDelivered != cs.TokensAccepted+cs.TokensDeduped {
			rep.add(InvCtrlDedup, "delivered %d token copies but accepted %d + deduped %d",
				cs.TokensDelivered, cs.TokensAccepted, cs.TokensDeduped)
		}
	}
	rep.Violations = append(rep.Violations,
		checkProgress(tw.times, res.InSystemSeries, sampleDT, spec.Duration, stall, spec.inSystemCeiling())...)
	return rep, nil
}

// add appends a formatted violation.
func (r *Report) add(inv, format string, args ...interface{}) {
	r.Violations = append(r.Violations, Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
}
