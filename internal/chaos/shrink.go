package chaos

import (
	"strconv"
	"strings"
)

// ShrinkResult is the outcome of minimizing a violating scenario.
type ShrinkResult struct {
	// Spec is the minimal scenario still violating the target invariant.
	Spec Spec
	// Invariant is the invariant the shrink preserved.
	Invariant string
	// Runs is how many candidate executions the shrink spent.
	Runs int
	// Steps is how many accepted reductions it took.
	Steps int
}

// maxShrinkRuns bounds the total executions one shrink may spend; the
// greedy fixpoint normally converges well under this.
const maxShrinkRuns = 200

// Shrink delta-debugs a violating scenario down to a locally minimal
// reproducer: it repeatedly proposes simplifications (drop a fault
// layer, drop one grammar item inside a layer, clear one overload
// knob, halve the horizon, soften a rate) and keeps a candidate only
// if the run still violates the SAME invariant. opts must be the
// options the violation was found under — a seeded bug injected via
// Options travels with the shrink, a real bug needs nothing. The
// result is deterministic: candidates are tried in a fixed order and
// every accepted spec replays identically from its string.
//
// invariant selects which broken invariant to preserve; it must be one
// the spec currently violates (pick from Report.ViolatedNames).
func Shrink(spec Spec, invariant string, opts Options) (*ShrinkResult, error) {
	res := &ShrinkResult{Spec: spec, Invariant: invariant}
	// still reports whether a candidate spec keeps the target violation.
	still := func(c Spec) bool {
		if res.Runs >= maxShrinkRuns {
			return false
		}
		res.Runs++
		rep, err := Execute(c, opts)
		if err != nil {
			return false // an invalid simplification is just skipped
		}
		return rep.Violated(invariant)
	}

	// Confirm the starting point actually violates the target; otherwise
	// the caller handed us the wrong invariant and we must not "shrink"
	// toward an arbitrary spec.
	if !still(spec) {
		return res, errNotViolating(spec, invariant)
	}

	for {
		improved := false
		for _, cand := range candidates(res.Spec) {
			if res.Runs >= maxShrinkRuns {
				return res, nil
			}
			if still(cand) {
				res.Spec = cand
				res.Steps++
				improved = true
				break // restart candidate generation from the smaller spec
			}
		}
		if !improved {
			return res, nil
		}
	}
}

type shrinkError struct{ msg string }

func (e shrinkError) Error() string { return e.msg }

func errNotViolating(s Spec, inv string) error {
	return shrinkError{"chaos: spec does not violate " + inv + ": " + s.String()}
}

// candidates proposes simplifications of s, most aggressive first:
// whole layers, then items within layers, then scalar softening. Each
// candidate changes exactly one thing, so an accepted step is easy to
// read off the spec diff.
func candidates(s Spec) []Spec {
	var out []Spec
	add := func(c Spec) { out = append(out, c) }

	// Drop whole layers.
	if s.MTBF > 0 {
		c := s
		c.MTBF, c.MTTR, c.Fate, c.Retries, c.Detect = 0, 0, "", 0, 0
		add(c)
	}
	if s.QCap != "" || s.Admit != "" || s.Deadline != "" || s.Timeout > 0 || s.Backoff != "" || s.Breaker != "" {
		c := s
		c.QCap, c.Admit, c.Deadline, c.Backoff, c.Breaker = "", "", "", "", ""
		c.Timeout, c.Retry = 0, 0
		add(c)
	}
	if s.Drift != "" {
		c := s
		c.Drift = ""
		add(c)
	}
	if s.Netfault != "" || s.AckTO != "" || s.DState != "" {
		c := s
		c.Netfault, c.AckTO, c.DState = "", "", ""
		add(c)
	}
	if s.Ctrl != "" {
		c := s
		c.Ctrl = ""
		add(c)
	}

	// Clear individual overload knobs. Some combinations are invalid on
	// their own (reject-when-full without a queue cap) — Build rejects
	// them and the shrinker skips on.
	for _, f := range []func(*Spec){
		func(c *Spec) { c.QCap = "" },
		func(c *Spec) { c.Admit = "" },
		func(c *Spec) { c.Deadline = "" },
		func(c *Spec) { c.Timeout, c.Retry = 0, 0 },
		func(c *Spec) { c.Backoff = "" },
		func(c *Spec) { c.Breaker = "" },
	} {
		c := s
		f(&c)
		if c.String() != s.String() {
			add(c)
		}
	}
	if s.DState != "" {
		c := s
		c.DState = ""
		add(c)
	}

	// Drop one comma item from the multi-item layer grammars.
	for _, items := range dropEach(s.Drift) {
		c := s
		c.Drift = items
		add(c)
	}
	for _, items := range dropEach(s.Netfault) {
		c := s
		c.Netfault = items
		add(c)
	}
	// Some ctrl item subsets are invalid on their own (loss without
	// qto) — Build rejects them and the shrinker skips on.
	for _, items := range dropEach(s.Ctrl) {
		c := s
		c.Ctrl = items
		add(c)
	}

	// Halve the horizon (floor 1000 s keeps enough arrivals to mean
	// anything) — shorter reproducers replay faster.
	if s.Duration/2 >= 1000 {
		c := s
		c.Duration = s.Duration / 2
		// Per-duration layer parameters scale so the fault still occurs
		// in the shorter run.
		if c.MTBF > s.Duration/4 {
			c.MTBF = s.Duration / 4
		}
		add(c)
	}

	// Soften the load.
	if s.Rho > 0.35 {
		c := s
		c.Rho = roundSig(s.Rho*0.75, 4)
		add(c)
	}

	// Soften the fault layer: fewer, shorter outages.
	if s.MTBF > 0 {
		c := s
		c.MTBF = roundSig(s.MTBF*2, 6)
		add(c)
		c = s
		c.MTTR = roundSig(s.MTTR/2, 6)
		add(c)
		if s.Detect > 0 {
			c = s
			c.Detect = 0
			add(c)
		}
		if s.Retries > 1 {
			c = s
			c.Retries = 1
			add(c)
		}
	}

	// Halve numeric values inside netfault items (loss, dup, lat rates).
	for _, nf := range halveEachRate(s.Netfault) {
		c := s
		c.Netfault = nf
		add(c)
	}

	// Drop the last (fastest) computer — smaller fleets are easier to
	// trace by hand.
	if len(s.Speeds) > 2 {
		c := s
		c.Speeds = append([]float64(nil), s.Speeds[:len(s.Speeds)-1]...)
		add(c)
	}
	return out
}

// dropEach returns spec with one comma item removed, once per item;
// nothing for specs with fewer than two items (whole-layer drop covers
// the single-item case).
func dropEach(spec string) []string {
	if spec == "" {
		return nil
	}
	items := strings.Split(spec, ",")
	if len(items) < 2 {
		return nil
	}
	out := make([]string, 0, len(items))
	for i := range items {
		rest := make([]string, 0, len(items)-1)
		rest = append(rest, items[:i]...)
		rest = append(rest, items[i+1:]...)
		out = append(out, strings.Join(rest, ","))
	}
	return out
}

// halveEachRate rewrites one loss:/dup: item at a time with its rate
// halved — softened faults that still reproduce make the cause easier
// to see.
func halveEachRate(spec string) []string {
	if spec == "" {
		return nil
	}
	items := strings.Split(spec, ",")
	var out []string
	for i, it := range items {
		kind, rest, ok := strings.Cut(it, ":")
		if !ok || (kind != "loss" && kind != "dup") {
			continue
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil || v <= 1e-4 {
			continue
		}
		mod := append([]string(nil), items...)
		mod[i] = kind + ":" + strconv.FormatFloat(roundSig(v/2, 6), 'g', -1, 64)
		out = append(out, strings.Join(mod, ","))
	}
	return out
}

// roundSig rounds v to n significant decimal digits so shrunken specs
// stay readable instead of accumulating float dust.
func roundSig(v float64, n int) float64 {
	s := strconv.FormatFloat(v, 'g', n, 64)
	r, _ := strconv.ParseFloat(s, 64)
	return r
}
