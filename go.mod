module heterosched

go 1.22
