GO ?= go

.PHONY: all build test check stress vet fmt clean probe-smoke

all: build

build:
	$(GO) build ./...

# Fast full-suite run (tier-1 gate).
test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# check is the pre-commit gate: vet, build, then the whole suite under the
# race detector with -short so the internal/sim stress tests run at reduced
# iteration counts (see stressN in internal/sim/stress_test.go).
check: vet build
	$(GO) test -race -short ./...

# stress runs the internal/sim stress tests at full iteration counts under
# the race detector.
stress:
	$(GO) test -race -run 'Stress|Conservation|Randomized|Cancellations|Monotone|Quick' ./internal/sim/

# probe-smoke runs a short fully instrumented simulation (metrics,
# cadence samples, lifecycle events, trace, manifest) and validates the
# artifacts with probecheck. CI runs this and uploads probe-out/.
probe-smoke:
	mkdir -p probe-out
	$(GO) run ./cmd/heterosim -speeds 1,1,2,10 -rho 0.7 -policy ORR \
		-duration 2e4 -reps 1 -probe -sample-dt 500 \
		-events probe-out/events.jsonl -manifest probe-out/manifest.json \
		-trace probe-out/trace.csv > probe-out/report.txt
	$(GO) run ./cmd/probecheck -manifest probe-out/manifest.json \
		-events probe-out/events.jsonl -require-terminal

fmt:
	gofmt -w $$($(GO) list -f '{{.Dir}}' ./...)

clean:
	$(GO) clean ./...
