GO ?= go

.PHONY: all build test check stress vet fmt clean

all: build

build:
	$(GO) build ./...

# Fast full-suite run (tier-1 gate).
test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# check is the pre-commit gate: vet, build, then the whole suite under the
# race detector with -short so the internal/sim stress tests run at reduced
# iteration counts (see stressN in internal/sim/stress_test.go).
check: vet build
	$(GO) test -race -short ./...

# stress runs the internal/sim stress tests at full iteration counts under
# the race detector.
stress:
	$(GO) test -race -run 'Stress|Conservation|Randomized|Cancellations|Monotone|Quick' ./internal/sim/

fmt:
	gofmt -w $$($(GO) list -f '{{.Dir}}' ./...)

clean:
	$(GO) clean ./...
