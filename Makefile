GO ?= go

# Committed benchmark baseline for the regression gate (see cmd/benchreg).
# Re-record with `make bench-baseline` after an intentional perf change and
# commit the new file (renamed to the recording date).
BENCH_BASELINE ?= BENCH_2026-08-06.json
# Tolerated relative ns/op regression on hot-path benchmarks. allocs/op is
# always exact. CI overrides this with generous headroom because its
# hardware differs from the baseline machine; locally 10% is realistic.
BENCH_THRESHOLD ?= 0.10

.PHONY: all build test check race stress vet fmt clean probe-smoke trace-smoke netfault-smoke shard-smoke ctrl-smoke chaos-smoke benchcheck bench-baseline

all: build

build:
	$(GO) build ./...

# Fast full-suite run (tier-1 gate).
test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# check is the pre-commit gate: vet, build, then the whole suite under the
# race detector with -short so the internal/sim stress tests run at reduced
# iteration counts (see stressN in internal/sim/stress_test.go).
# -shuffle=on randomizes test and subtest order to catch order coupling;
# a failure prints the shuffle seed for replay (-shuffle=SEED).
check: vet build
	$(GO) test -race -short -shuffle=on ./...

# race runs the whole suite under the race detector with -short (stress
# tests at reduced iteration counts). The adaptive re-planning loop,
# drift modulation and replication scheduler all share engine state, so
# CI runs this as its own job.
race:
	$(GO) test -race -short ./...

# stress runs the internal/sim and internal/cluster stress tests at full
# iteration counts under the race detector (the cluster side includes the
# long netfault stress run; see TestNetfaultStress).
stress:
	$(GO) test -race -run 'Stress|Conservation|Randomized|Cancellations|Monotone|Quick' ./internal/sim/ ./internal/cluster/

# probe-smoke runs a short fully instrumented simulation (metrics,
# cadence samples, lifecycle events, trace, manifest) and validates the
# artifacts with probecheck. CI runs this and uploads probe-out/.
probe-smoke:
	mkdir -p probe-out
	$(GO) run ./cmd/heterosim -speeds 1,1,2,10 -rho 0.7 -policy ORR \
		-duration 2e4 -reps 1 -probe -sample-dt 500 \
		-events probe-out/events.jsonl -manifest probe-out/manifest.json \
		-trace probe-out/trace.csv > probe-out/report.txt
	$(GO) run ./cmd/probecheck -manifest probe-out/manifest.json \
		-events probe-out/events.jsonl -require-terminal

# trace-smoke runs a short span-instrumented simulation (spans, events,
# trace CSV, manifest) under network faults — the nastiest assembly path:
# resubmits, duplicate deliveries, dispatcher crashes — and validates the
# span export, manifest and event stream with probecheck. CI runs this
# and uploads trace-out/.
trace-smoke:
	mkdir -p trace-out
	$(GO) run ./cmd/heterosim -speeds 1,1,2,10 -rho 0.7 -policy ORR \
		-duration 2e4 -reps 1 -probe \
		-netfault loss:0.05,dup:0.05,lat:2,crash:8000:100,down:buffer \
		-ackto 30 \
		-spans trace-out/spans.json -events trace-out/events.jsonl \
		-manifest trace-out/manifest.json -trace trace-out/trace.csv \
		> trace-out/report.txt
	$(GO) run ./cmd/probecheck -manifest trace-out/manifest.json \
		-events trace-out/events.jsonl -require-terminal \
		-spans trace-out/spans.json

# netfault-smoke runs a short simulation over an unreliable control plane
# (loss, duplication, latency, dispatcher crashes with checkpoint
# recovery) with full instrumentation and validates the event stream with
# probecheck: exactly-once terminals must hold despite resubmission and
# duplicate delivery.
netfault-smoke:
	mkdir -p netfault-out
	$(GO) run ./cmd/heterosim -speeds 1,1,2,10 -rho 0.7 -policy ORR \
		-duration 2e4 -reps 1 -probe \
		-netfault loss:0.05,dup:0.05,lat:2,crash:8000:100,down:buffer \
		-ackto 30 -dstate ckpt:2500 \
		-events netfault-out/events.jsonl -manifest netfault-out/manifest.json \
		> netfault-out/report.txt
	$(GO) run ./cmd/probecheck -manifest netfault-out/manifest.json \
		-events netfault-out/events.jsonl -require-terminal

# shard-smoke runs a short simulation of a scaled system (the base speed
# vector tiled to 200 computers) under K=4 hash-routed dispatcher
# replicas with the scalable JSQ(2) policy, fully instrumented, and
# validates the artifacts with probecheck: sharding must not break
# exactly-once terminals or the manifest contract.
shard-smoke:
	mkdir -p shard-out
	$(GO) run ./cmd/heterosim -speeds 1,1,2,10 -scale 200 -rho 0.7 \
		-policy 'jsq(2)' -dispatchers 4:hash -duration 2e3 -reps 1 -probe \
		-events shard-out/events.jsonl -manifest shard-out/manifest.json \
		> shard-out/report.txt
	$(GO) run ./cmd/probecheck -manifest shard-out/manifest.json \
		-events shard-out/events.jsonl -require-terminal

# ctrl-smoke runs a short simulation with the JIQ policy's idle-token
# reports carried over lossy, slow control links (leases and a query
# timeout active) under K=4 hash-routed dispatcher replicas, fully
# instrumented, and validates the artifacts with probecheck: control-
# plane faults must not break exactly-once terminals or the manifest
# contract.
ctrl-smoke:
	mkdir -p ctrl-out
	$(GO) run ./cmd/heterosim -speeds 1,1,2,10 -rho 0.7 \
		-policy jiq -dispatchers 4:hash \
		-ctrl 'loss:0.2,lat:5,lease:200,qto:50' -duration 2e3 -reps 1 -probe \
		-events ctrl-out/events.jsonl -manifest ctrl-out/manifest.json \
		> ctrl-out/report.txt
	$(GO) run ./cmd/probecheck -manifest ctrl-out/manifest.json \
		-events ctrl-out/events.jsonl -require-terminal

# chaos-smoke samples a bounded budget of composed fault scenarios
# (faults x overload x drift x netfault) and checks every run against the
# invariant registry (see internal/chaos and `go run ./cmd/chaos list`).
# Any violating scenario is shrunk to a minimal reproducer spec written
# under chaos-out/; CI uploads the directory so a red run ships its own
# replayable repro (`go run ./cmd/chaos replay -spec chaos-out/repro-K.chaos`).
chaos-smoke:
	mkdir -p chaos-out
	$(GO) run ./cmd/chaos search \
		-chaos seeds:120,intensity:1,dur:20000,seed:7 \
		-out chaos-out

# benchcheck is the benchmark-regression gate: re-measure the hot-path
# suite and compare against the committed baseline. Fails on >threshold
# ns/op or any allocs/op regression on hot-path benchmarks.
benchcheck:
	$(GO) run ./cmd/benchreg check -baseline $(BENCH_BASELINE) \
		-threshold $(BENCH_THRESHOLD) -save bench-current.json

# bench-baseline re-records the committed baseline on this machine.
bench-baseline:
	$(GO) run ./cmd/benchreg baseline -out $(BENCH_BASELINE)

fmt:
	gofmt -w $$($(GO) list -f '{{.Dir}}' ./...)

clean:
	$(GO) clean ./...
