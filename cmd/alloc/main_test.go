package main

import "testing"

func TestParseSpeedsAlloc(t *testing.T) {
	got, err := parseSpeeds("1,1.5,2,3,5,9,10")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 || got[6] != 10 {
		t.Errorf("got %v", got)
	}
	if _, err := parseSpeeds(" , "); err == nil {
		t.Error("blank speeds accepted")
	}
	if _, err := parseSpeeds("1;2"); err == nil {
		t.Error("bad separator accepted")
	}
}
