// Command alloc computes workload allocation vectors for a heterogeneous
// system and compares the schemes analytically.
//
// Usage:
//
//	alloc -speeds 1,1.5,2,3,5,9,10 -rho 0.7 [-meansize 76.8]
//
// It prints, for each scheme (equal, weighted, optimized), the per-computer
// fractions, per-computer utilizations, and the predicted mean response
// time and response ratio under the M/M/1-PS model, plus the Theorem 1
// objective values.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"heterosched/internal/alloc"
	"heterosched/internal/queueing"
	"heterosched/internal/report"
)

func main() {
	speedsFlag := flag.String("speeds", "1,1.5,2,3,5,9,10", "comma-separated relative computer speeds")
	rho := flag.Float64("rho", 0.7, "system utilization in [0,1)")
	meanSize := flag.Float64("meansize", 76.8, "mean job size in seconds (sets the base service rate)")
	flag.Parse()

	speeds, err := parseSpeeds(*speedsFlag)
	if err != nil {
		fatal(err)
	}
	sys, err := queueing.SystemFromUtilization(speeds, *meanSize, *rho)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("system: %d computers, aggregate speed %.4g, rho %.4g, lambda %.6g jobs/s\n\n",
		sys.N(), sys.TotalSpeed(), *rho, sys.Lambda)

	schemes := []alloc.Allocator{alloc.Equal{}, alloc.Proportional{}, alloc.Optimized{}}
	summary := report.NewTable("predicted performance (M/M/1-PS model)",
		"scheme", "mean resp time (s)", "mean resp ratio", "objective F")
	for _, a := range schemes {
		fr, err := a.Allocate(speeds, *rho)
		if err != nil {
			fmt.Printf("%s: infeasible at rho=%.4g: %v\n\n", a.Name(), *rho, err)
			continue
		}
		printAllocation(sys, a.Name(), speeds, fr)
		tbar, err := sys.MeanResponseTime(fr)
		if err != nil {
			fatal(err)
		}
		rbar, err := sys.MeanResponseRatio(fr)
		if err != nil {
			fatal(err)
		}
		f, err := sys.Objective(fr)
		if err != nil {
			fatal(err)
		}
		summary.AddRow(schemeName(a), report.F(tbar), report.F(rbar), report.F(f))
	}
	if fstar, err := sys.TheoremOneMinimum(); err == nil {
		summary.AddNote("Theorem 1 unconstrained minimum F* = %s", report.F(fstar))
	}
	if _, err := summary.WriteTo(os.Stdout); err != nil {
		fatal(err)
	}
}

func schemeName(a alloc.Allocator) string {
	switch a.(type) {
	case alloc.Equal:
		return "equal"
	case alloc.Proportional:
		return "weighted"
	case alloc.Optimized:
		return "optimized"
	default:
		return a.Name()
	}
}

func printAllocation(sys *queueing.System, name string, speeds, fr []float64) {
	t := report.NewTable(fmt.Sprintf("%s allocation", name), "computer", "speed", "fraction %", "utilization %")
	rhos, err := sys.ServerUtilization(fr)
	if err != nil {
		fatal(err)
	}
	for i := range speeds {
		t.AddRow(strconv.Itoa(i+1), report.F(speeds[i]), report.Pct(fr[i]), report.Pct(rhos[i]))
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Println()
}

func parseSpeeds(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	speeds := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad speed %q: %v", p, err)
		}
		speeds = append(speeds, v)
	}
	if len(speeds) == 0 {
		return nil, fmt.Errorf("no speeds given")
	}
	return speeds, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alloc:", err)
	os.Exit(1)
}
