// Command sweep runs a utilization sweep for a set of policies on an
// arbitrary cluster and prints the three paper metrics per point — the
// general-purpose version of the fig5 harness.
//
// Usage:
//
//	sweep -speeds 1,1,2,10 -policies ORR,WRR,LL -from 0.3 -to 0.9 -step 0.1 \
//	      -duration 2e5 -reps 3 [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"heterosched/internal/cluster"
	"heterosched/internal/report"
	"heterosched/internal/sched"
)

func main() {
	speedsFlag := flag.String("speeds", "1,1,2,10", "comma-separated relative computer speeds")
	policiesFlag := flag.String("policies", "WRAN,ORAN,WRR,ORR,LL", "comma-separated policies")
	from := flag.Float64("from", 0.3, "first utilization")
	to := flag.Float64("to", 0.9, "last utilization (inclusive)")
	step := flag.Float64("step", 0.1, "utilization step")
	duration := flag.Float64("duration", 2e5, "simulated seconds per replication")
	reps := flag.Int("reps", 3, "replications per point")
	seed := flag.Uint64("seed", 1, "root seed")
	cv := flag.Float64("cv", 3.0, "arrival CV (1 = Poisson)")
	csvPath := flag.String("csv", "", "also write the response-ratio table as CSV")
	flag.Parse()

	speeds, err := parseFloats(*speedsFlag)
	if err != nil {
		fatal(err)
	}
	names := strings.Split(*policiesFlag, ",")
	factories := make([]cluster.PolicyFactory, 0, len(names))
	clean := make([]string, 0, len(names))
	for _, n := range names {
		n = strings.TrimSpace(n)
		f, err := policyFactory(n)
		if err != nil {
			fatal(err)
		}
		factories = append(factories, f)
		clean = append(clean, n)
	}

	rhos := sweepValues(*from, *to, *step)
	if len(rhos) == 0 {
		fatal(fmt.Errorf("empty sweep: from=%v to=%v step=%v", *from, *to, *step))
	}

	tables, csvTable, err := runSweep(speeds, rhos, clean, factories, *duration, *reps, *seed, *cv)
	if err != nil {
		fatal(err)
	}
	for _, t := range tables {
		if _, err := t.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := csvTable.WriteCSV(f); err != nil {
			fatal(err)
		}
	}
}

// sweepValues enumerates from..to by step (inclusive, with rounding slop).
func sweepValues(from, to, step float64) []float64 {
	if step <= 0 || to < from {
		return nil
	}
	var out []float64
	for x := from; x <= to+step/1e6; x += step {
		out = append(out, x)
	}
	return out
}

// runSweep executes the sweep and renders the three metric tables; the
// second return is the response-ratio table (for CSV output).
func runSweep(speeds, rhos []float64, names []string, factories []cluster.PolicyFactory,
	duration float64, reps int, seed uint64, cv float64,
) ([]*report.Table, *report.Table, error) {
	headers := append([]string{"rho"}, names...)
	ratio := report.NewTable("mean response ratio", headers...)
	timeT := report.NewTable("mean response time (s)", headers...)
	fair := report.NewTable("fairness (sd of response ratio)", headers...)
	for _, rho := range rhos {
		rowR := []string{report.F(rho)}
		rowT := []string{report.F(rho)}
		rowF := []string{report.F(rho)}
		for _, f := range factories {
			cfg := cluster.Config{
				Speeds:      speeds,
				Utilization: rho,
				Duration:    duration,
				Seed:        seed,
				ArrivalCV:   cv,
			}
			if cv == 1 {
				cfg.ExponentialArrivals = true
			}
			res, err := cluster.RunReplications(cfg, f, reps)
			if err != nil {
				return nil, nil, err
			}
			rowR = append(rowR, report.F(res.MeanResponseRatio.Mean))
			rowT = append(rowT, report.F(res.MeanResponseTime.Mean))
			rowF = append(rowF, report.F(res.Fairness.Mean))
		}
		ratio.AddRow(rowR...)
		timeT.AddRow(rowT...)
		fair.AddRow(rowF...)
	}
	note := fmt.Sprintf("%d replications × %.3g s per point, arrival CV %.3g", reps, duration, cv)
	ratio.AddNote("%s", note)
	return []*report.Table{timeT, ratio, fair}, ratio, nil
}

// policyFactory mirrors cmd/heterosim's policy parser.
func policyFactory(name string) (cluster.PolicyFactory, error) {
	switch strings.ToUpper(name) {
	case "WRAN":
		return func() cluster.Policy { return sched.WRAN() }, nil
	case "ORAN":
		return func() cluster.Policy { return sched.ORAN() }, nil
	case "WRR":
		return func() cluster.Policy { return sched.WRR() }, nil
	case "ORR":
		return func() cluster.Policy { return sched.ORR() }, nil
	case "LL":
		return func() cluster.Policy { return sched.NewLeastLoad() }, nil
	case "JSQ2":
		return func() cluster.Policy { return sched.NewPowerOfTwo() }, nil
	}
	upper := strings.ToUpper(name)
	if strings.HasPrefix(upper, "ORRCAP") {
		v, err := strconv.ParseFloat(upper[6:], 64)
		if err == nil {
			return func() cluster.Policy { return sched.ORRCapped(v) }, nil
		}
	}
	if strings.HasPrefix(upper, "ORR") {
		pct, err := strconv.ParseFloat(upper[3:], 64)
		if err == nil {
			rel := pct / 100
			return func() cluster.Policy { return sched.ORRWithLoadErrorUnstable(rel) }, nil
		}
	}
	return nil, fmt.Errorf("unknown policy %q", name)
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %v", p, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no values in %q", s)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
