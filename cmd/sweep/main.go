// Command sweep runs a utilization sweep for a set of policies on an
// arbitrary cluster and prints the three paper metrics per point — the
// general-purpose version of the fig5 harness.
//
// Usage:
//
//	sweep -speeds 1,1,2,10 -policies ORR,WRR,LL -from 0.3 -to 0.9 -step 0.1 \
//	      -duration 2e5 -reps 3 [-csv out.csv]
//
// With -mtbf/-mttr set, computers fail and recover during the sweep and
// a fourth table reports jobs lost and degraded-window response times,
// e.g.:
//
//	sweep -speeds 1,1,2,10 -policies ORR,ORRA -from 0.2 -to 0.6 -step 0.2 \
//	      -mtbf 2e4 -mttr 2e3 -fate requeue -realloc resolve
//
// With any overload-protection flag set (-qcap, -admit, -deadline,
// -timeout, -retry, -backoff, -breaker) the sweep may cross rho = 1 and
// three extra tables report goodput, drops and deadline misses per
// point.
//
// With -netfault set (plus -ackto/-dstate), the dispatcher→computer
// control plane is unreliable across the whole sweep and two extra
// tables report jobs lost to the network and resubmission counts per
// point.
//
// With -ctrl set, the scalable policies' own control messages (JIQ
// idle tokens, jsq/pod(d) queue-length queries, counter-sync frames)
// travel over faulty links too, and two extra tables report control
// messages lost and query wait charged to dispatch latency per point.
//
// Observability: -probe adds an instrumented pass per sweep cell and a
// table of per-computer interarrival CVs (mean across computers) — the
// paper's §3 burstiness measurement, showing round-robin splitting
// (ORR) produces smoother substreams than probabilistic splitting
// (ORAN). -events names a directory receiving one JSONL lifecycle
// stream per cell, -sample-dt adds cadence samples, -manifest writes a
// sweep-level provenance record, and -debug-addr serves expvar/pprof
// with the live metrics of the cell currently running.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"heterosched/internal/cli"
	"heterosched/internal/cluster"
	"heterosched/internal/ctrlplane"
	"heterosched/internal/drift"
	"heterosched/internal/faults"
	"heterosched/internal/netfault"
	"heterosched/internal/probe"
	"heterosched/internal/report"
	"heterosched/internal/stats"
)

func main() {
	speedsFlag := flag.String("speeds", "1,1,2,10", "comma-separated relative computer speeds")
	policiesFlag := flag.String("policies", "WRAN,ORAN,WRR,ORR,LL", "comma-separated policies")
	dispatchersFlag := flag.String("dispatchers", "1", "dispatcher replicas K[:rr|hash] applied to every policy (1 = central scheduler)")
	syncFlag := flag.String("sync", "never", "counter-sync period for sharded Algorithm 2 replicas: never or seconds")
	scale := flag.Int("scale", 0, "tile -speeds cyclically out to this many computers (0 = use -speeds as given)")
	from := flag.Float64("from", 0.3, "first utilization")
	to := flag.Float64("to", 0.9, "last utilization (inclusive)")
	step := flag.Float64("step", 0.1, "utilization step")
	duration := flag.Float64("duration", 2e5, "simulated seconds per replication")
	reps := flag.Int("reps", 3, "replications per point")
	seed := flag.Uint64("seed", 1, "root seed")
	cv := flag.Float64("cv", 3.0, "arrival CV (1 = Poisson)")
	csvPath := flag.String("csv", "", "also write the response-ratio table as CSV")
	mtbf := flag.Float64("mtbf", 0, "mean time between failures per computer (exponential); 0 disables failures")
	mttr := flag.Float64("mttr", 0, "mean time to repair per computer (exponential)")
	fate := flag.String("fate", "requeue", "job fate at failure: lost, restart, resume or requeue")
	retries := flag.Int("retries", 3, "re-dispatch budget per job under -fate requeue")
	detect := flag.Float64("detect", 0, "failure/repair detection lag in seconds")
	realloc := flag.String("realloc", "stale", "static policies on failure: stale (keep fractions) or resolve (re-run allocator)")
	qcap := flag.String("qcap", "", "per-computer queue bound: K or K:oldest|newest (0/empty disables)")
	admit := flag.String("admit", "none", "admission policy: none, reject-when-full or token-bucket:RATE[:BURST]")
	deadline := flag.String("deadline", "", "per-job relative deadline: exp:MEAN, const:V or uni:LO:HI, optional :kill|:mark")
	timeout := flag.Float64("timeout", 0, "dispatcher timeout in seconds before a job is pulled back and retried (0 disables)")
	retry := flag.Int("retry", 0, "retry budget per job after timeouts and rejections")
	backoff := flag.String("backoff", "", "retry backoff BASE:MAX[:JITTER] in seconds (default 1:60:0)")
	breaker := flag.String("breaker", "", "per-computer circuit breaker CONSEC:COOLDOWN[:RATIO:WINDOW] (empty disables)")
	probeFlag := flag.Bool("probe", false, "instrument one extra pass per cell and report interarrival CVs")
	events := flag.String("events", "", "directory receiving one JSONL lifecycle event stream per sweep cell")
	manifestPath := flag.String("manifest", "", "write a sweep manifest (config, seed, git, wall/sim time, metrics) to this JSON file")
	sampleDT := flag.Float64("sample-dt", 0, "also sample probe series every this many simulated seconds (implies -probe)")
	debugAddr := flag.String("debug-addr", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
	driftFlag := flag.String("drift", "", "ground-truth drift specs, comma-separated: lstep:T:F, lramp:T0:T1:F, lcycle:P:A, sstep:T:F[:IDX], mis:RHOERR[:SPEEDERR]")
	replan := flag.String("replan", "", "adaptive re-planning CHECK:TRIP:COOLDOWN[:BAND[:MINN]] (empty disables)")
	estimator := flag.String("estimator", "", "online estimator win:N or ewma:ALPHA (default win:256; needs -replan)")
	netfaultFlag := flag.String("netfault", "", "network-fault specs, comma-separated: loss:P[:LINK], dup:P[:LINK], lat:MEAN[:LINK], crash:MTBF:MTTR, down:drop|buffer[:CAP]|failover, part:FROM:TO[:L1+L2+...]")
	ackto := flag.String("ackto", "", "dispatch ack timeout TO[:BUDGET[:BASE:MAX[:JITTER]]]; required when the network can lose messages")
	dstate := flag.String("dstate", "", "dispatcher state recovery after a crash: acks, ckpt:DT[:CLIENTTO] or cold[:RELEARN[:CLIENTTO]] (needs a crash item)")
	ctrlFlag := flag.String("ctrl", "", "control-plane fault specs, comma-separated: loss:P[:LINK], dup:P[:LINK], lat:MEAN[:LINK], lease:T, qto:T, part:FROM:TO[:L1+L2+...], dpart:FROM:TO[:K1+K2+...]")
	flag.Parse()
	start := time.Now()

	speeds, err := cli.ParseSpeeds(*speedsFlag)
	if err != nil {
		fatal(err)
	}
	if speeds, err = cli.ScaleSpeeds(speeds, *scale); err != nil {
		fatal(err)
	}
	sharding, err := cli.ParseShardingSpecs(*dispatchersFlag, *syncFlag)
	if err != nil {
		fatal(err)
	}
	if err := cli.ValidateSweepRange(*from, *to, *step); err != nil {
		fatal(err)
	}
	params := cli.RunParams{Rho: *from, Duration: *duration, Reps: *reps, CV: *cv, MeanSize: 76.8}
	if err := params.Validate(); err != nil {
		fatal(err)
	}
	pp := cli.ProbeParams{
		Probe: *probeFlag, Events: *events, Manifest: *manifestPath,
		SampleDT: *sampleDT, DebugAddr: *debugAddr,
	}
	if err := pp.Validate(); err != nil {
		fatal(err)
	}
	if pp.Events != "" {
		if err := os.MkdirAll(pp.Events, 0o755); err != nil {
			fatal(err)
		}
	}
	if pp.DebugAddr != "" {
		addr, _, errc, err := probe.ServeDebug(pp.DebugAddr)
		if err != nil {
			fatal(err)
		}
		go func() {
			if serr := <-errc; serr != nil {
				fmt.Fprintln(os.Stderr, "sweep: debug server:", serr)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/vars\n", addr)
	}
	faultCfg, mode, err := cli.FaultParams{
		MTBF: *mtbf, MTTR: *mttr, Fate: *fate, Retries: *retries, Detect: *detect, Realloc: *realloc,
	}.Build()
	if err != nil {
		fatal(err)
	}
	ovCfg, err := cli.OverloadParams{
		QCap: *qcap, Admit: *admit, Deadline: *deadline,
		Timeout: *timeout, Retry: *retry, Backoff: *backoff, Breaker: *breaker,
	}.Build()
	if err != nil {
		fatal(err)
	}
	driftCfg, adaptCfg, err := cli.DriftParams{
		Drift: *driftFlag, Replan: *replan, Estimator: *estimator,
	}.Build(len(speeds))
	if err != nil {
		fatal(err)
	}
	netfaultCfg, err := cli.NetfaultParams{
		Netfault: *netfaultFlag, AckTO: *ackto, DState: *dstate,
	}.Build(len(speeds))
	if err != nil {
		fatal(err)
	}
	ctrlCfg, err := cli.CtrlParams{Ctrl: *ctrlFlag}.Build(len(speeds), sharding.Dispatchers)
	if err != nil {
		fatal(err)
	}
	names, factories, err := cli.ParsePolicies(*policiesFlag, cli.PolicyOptions{
		Realloc:   mode,
		Faults:    faultCfg,
		Computers: len(speeds),
		Sharding:  sharding,
	})
	if err != nil {
		fatal(err)
	}

	rhos := sweepValues(*from, *to, *step)
	if len(rhos) == 0 {
		fatal(fmt.Errorf("empty sweep: from=%v to=%v step=%v", *from, *to, *step))
	}

	tables, csvTable, probeMetrics, err := runSweep(speeds, rhos, names, factories, *duration, *reps, *seed, *cv, faultCfg, ovCfg, driftCfg, adaptCfg, netfaultCfg, ctrlCfg, pp, sharding.Enabled())
	if err != nil {
		fatal(err)
	}
	for _, t := range tables {
		if _, err := t.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := csvTable.WriteCSV(f); err != nil {
			fatal(err)
		}
	}

	if pp.Manifest != "" {
		m := probe.NewManifest("sweep", os.Args[1:], start)
		m.Seed = *seed
		m.Config["speeds"] = speeds
		m.Config["policies"] = *policiesFlag
		m.Config["from"] = *from
		m.Config["to"] = *to
		m.Config["step"] = *step
		m.Config["duration"] = *duration
		m.Config["reps"] = *reps
		m.Config["cv"] = *cv
		if driftCfg != nil {
			m.Config["drift"] = *driftFlag
		}
		if adaptCfg != nil {
			m.Config["replan"] = *replan
		}
		if sharding.Enabled() {
			m.Config["dispatchers"] = *dispatchersFlag
			m.Config["sync"] = *syncFlag
		}
		if *scale > 0 {
			m.Config["scale"] = *scale
		}
		if netfaultCfg != nil {
			m.Config["netfault"] = *netfaultFlag
			if *ackto != "" {
				m.Config["ackto"] = *ackto
			}
			if *dstate != "" {
				m.Config["dstate"] = *dstate
			}
		}
		if ctrlCfg != nil {
			m.Config["ctrl"] = *ctrlFlag
		}
		if pp.SampleDT > 0 {
			m.Config["sample_dt"] = pp.SampleDT
		}
		m.WallSeconds = time.Since(start).Seconds()
		cells := float64(len(rhos) * len(names))
		runsPerCell := float64(*reps)
		if pp.Active() {
			runsPerCell++
		}
		m.SimTime = *duration * cells * runsPerCell
		m.Metrics["cells"] = cells
		for k, v := range probeMetrics {
			m.Metrics[k] = v
		}
		if err := m.WriteFile(pp.Manifest); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "manifest written to %s\n", pp.Manifest)
	}
}

// sweepValues enumerates from..to by step (inclusive, with rounding slop).
func sweepValues(from, to, step float64) []float64 {
	if step <= 0 || to < from {
		return nil
	}
	var out []float64
	for x := from; x <= to+step/1e6; x += step {
		out = append(out, x)
	}
	return out
}

// runSweep executes the sweep and renders the metric tables; the second
// return is the response-ratio table (for CSV output). With a fault
// config, two extra tables report jobs lost and the degraded-window mean
// response time per point; with an overload config, three more report
// goodput, drops and deadline misses. With probe instrumentation active,
// one extra uninstrumented-identical pass runs per cell and the third
// return carries per-cell probe metrics for the manifest.
//
// A cell whose run fails — typically an infeasible allocation
// (alloc.ErrBadInput) at extreme rho or degenerate speeds — is skipped:
// its cells render as "-" and a table note names the cell and the
// error, instead of aborting the whole sweep.
func runSweep(speeds, rhos []float64, names []string, factories []cluster.PolicyFactory,
	duration float64, reps int, seed uint64, cv float64, faultCfg *faults.Config,
	ovCfg *cluster.OverloadConfig, driftCfg *drift.Config, adaptCfg *cluster.AdaptConfig,
	nfCfg *netfault.Config, ctrlCfg *ctrlplane.Config, pp cli.ProbeParams, sharded bool,
) ([]*report.Table, *report.Table, map[string]float64, error) {
	headers := append([]string{"rho"}, names...)
	ratio := report.NewTable("mean response ratio", headers...)
	timeT := report.NewTable("mean response time (s)", headers...)
	fair := report.NewTable("fairness (sd of response ratio)", headers...)
	withFaults := faultCfg.Enabled()
	var lostT, degT *report.Table
	if withFaults {
		lostT = report.NewTable("jobs lost (mean per replication)", headers...)
		degT = report.NewTable("mean response time in degraded windows (s)", headers...)
	}
	withOverload := ovCfg.Enabled()
	var goodT, dropT, missT, pctT *report.Table
	if withOverload {
		goodT = report.NewTable("goodput (jobs completed in time, sum across replications)", headers...)
		dropT = report.NewTable("jobs dropped (shed + retry budget + deadline kills)", headers...)
		missT = report.NewTable("deadline misses (killed + late)", headers...)
		pctT = report.NewTable("resp time p50/p90/p99/p999 (s, streaming histograms merged across replications)", headers...)
		pctT.AddNote("log-bucketed bins (no retained samples): each quantile carries relative error at most the bin-edge ratio minus one, ~6%% for the 400-bin [1e-3,1e7) geometry")
	}
	withNetfault := nfCfg.Enabled()
	var netT, resubT *report.Table
	if withNetfault {
		netT = report.NewTable("jobs lost to the network + dropped by the dispatcher (sum across replications)", headers...)
		resubT = report.NewTable("network resubmissions (sum across replications)", headers...)
	}
	withCtrl := ctrlCfg.Enabled()
	var ctrlLostT, ctrlWaitT *report.Table
	if withCtrl {
		ctrlLostT = report.NewTable("control messages lost (tokens + queries + sync frames, sum across replications)", headers...)
		ctrlWaitT = report.NewTable("query wait charged to dispatch latency (s, sum across replications)", headers...)
		ctrlWaitT.AddNote("\"-\" for policies that issue no queue-length probes (the layer still carries their tokens or sync frames)")
	}
	withProbe := pp.Active()
	probeMetrics := map[string]float64{}
	var skipped []string
	var cvT *report.Table
	if pp.Probe || pp.SampleDT > 0 {
		cvT = report.NewTable("interarrival CV (mean across computers, instrumented pass)", headers...)
		cvT.AddNote("the paper's §3 burstiness measurement: round-robin splitting smooths each computer's arrival substream, probabilistic splitting does not")
	}
	var shardT *report.Table
	if cvT != nil && sharded {
		shardT = report.NewTable("per-dispatcher interarrival CV (mean across replicas, instrumented pass)", headers...)
		shardT.AddNote("each dispatcher replica's private arrival substream; \"-\" for policies that ran unsharded")
	}
	var decompT *report.Table
	if withProbe {
		decompT = report.NewTable("T̄ decomposition (% queue / service / net / retry, instrumented pass)", headers...)
		decompT.AddNote("per-component share of mean response time from the probe span layer; components sum to T̄ per job")
	}
	for _, rho := range rhos {
		rowR := []string{report.F(rho)}
		rowT := []string{report.F(rho)}
		rowF := []string{report.F(rho)}
		rowL := []string{report.F(rho)}
		rowD := []string{report.F(rho)}
		rowG := []string{report.F(rho)}
		rowX := []string{report.F(rho)}
		rowM := []string{report.F(rho)}
		rowN := []string{report.F(rho)}
		rowS := []string{report.F(rho)}
		rowC := []string{report.F(rho)}
		rowP := []string{report.F(rho)}
		rowDC := []string{report.F(rho)}
		rowK := []string{report.F(rho)}
		rowCL := []string{report.F(rho)}
		rowCW := []string{report.F(rho)}
		for k, f := range factories {
			cfg := cluster.Config{
				Speeds:      speeds,
				Utilization: rho,
				Duration:    duration,
				Seed:        seed,
				ArrivalCV:   cv,
				Faults:      faultCfg,
				Overload:    ovCfg,
				Drift:       driftCfg,
				Adapt:       adaptCfg,
				Netfault:    nfCfg,
				Ctrl:        ctrlCfg,
			}
			if cv == 1 {
				cfg.ExponentialArrivals = true
			}
			res, err := cluster.RunReplications(cfg, f, reps)
			if err != nil {
				// Skip the bad cell instead of aborting the sweep: fill
				// every table with "-" and report the reason in a note.
				skipped = append(skipped, fmt.Sprintf("%s at rho=%s: %v", names[k], report.F(rho), err))
				rowR = append(rowR, "-")
				rowT = append(rowT, "-")
				rowF = append(rowF, "-")
				if withFaults {
					rowL = append(rowL, "-")
					rowD = append(rowD, "-")
				}
				if withOverload {
					rowG = append(rowG, "-")
					rowX = append(rowX, "-")
					rowM = append(rowM, "-")
					rowP = append(rowP, "-")
				}
				if withNetfault {
					rowN = append(rowN, "-")
					rowS = append(rowS, "-")
				}
				if withCtrl {
					rowCL = append(rowCL, "-")
					rowCW = append(rowCW, "-")
				}
				if cvT != nil {
					rowC = append(rowC, "-")
				}
				if shardT != nil {
					rowK = append(rowK, "-")
				}
				if decompT != nil {
					rowDC = append(rowDC, "-")
				}
				continue
			}
			rowR = append(rowR, report.F(res.MeanResponseRatio.Mean))
			rowT = append(rowT, report.F(res.MeanResponseTime.Mean))
			rowF = append(rowF, report.F(res.Fairness.Mean))
			if withFaults {
				rowL = append(rowL, report.F(res.JobsLost.Mean))
				rowD = append(rowD, report.F(res.MeanResponseTimeDegraded.Mean))
			}
			if withOverload {
				var ov cluster.OverloadStats
				for _, run := range res.Runs {
					ov.AddCounters(run.Overload)
				}
				rowG = append(rowG, strconv.FormatInt(ov.Goodput, 10))
				rowX = append(rowX, strconv.FormatInt(ov.Dropped(), 10))
				rowM = append(rowM, strconv.FormatInt(ov.DeadlineMisses, 10))
				rowP = append(rowP, mergedPercentiles(res.Runs))
			}
			if withNetfault {
				var nf cluster.NetfaultStats
				for _, run := range res.Runs {
					nf.AddCounters(run.Netfault)
				}
				rowN = append(rowN, strconv.FormatInt(nf.LostNetwork+nf.DownDropped, 10))
				rowS = append(rowS, strconv.FormatInt(nf.Resubmits, 10))
			}
			if withCtrl {
				var cp ctrlplane.Stats
				for _, run := range res.Runs {
					cp.Add(run.Ctrl)
				}
				rowCL = append(rowCL, strconv.FormatInt(cp.TokensLost+cp.QueriesLost+cp.SyncLost, 10))
				if cp.Decisions > 0 {
					rowCW = append(rowCW, report.F(cp.QueryWait))
				} else {
					rowCW = append(rowCW, "-")
				}
			}
			if withProbe {
				meanCV, shardCV, tot, err := probeCell(cfg, f, names[k], rho, pp)
				if err != nil {
					skipped = append(skipped, fmt.Sprintf("%s at rho=%s (probe pass): %v", names[k], report.F(rho), err))
					if cvT != nil {
						rowC = append(rowC, "-")
					}
					if shardT != nil {
						rowK = append(rowK, "-")
					}
					if decompT != nil {
						rowDC = append(rowDC, "-")
					}
				} else {
					if cvT != nil {
						rowC = append(rowC, report.F(meanCV))
						probeMetrics[fmt.Sprintf("interarrival_cv.%s.rho%s", names[k], report.F(rho))] = meanCV
					}
					if shardT != nil {
						if math.IsNaN(shardCV) {
							rowK = append(rowK, "-")
						} else {
							rowK = append(rowK, report.F(shardCV))
							probeMetrics[fmt.Sprintf("shard_cv.%s.rho%s", names[k], report.F(rho))] = shardCV
						}
					}
					if decompT != nil {
						rowDC = append(rowDC, decompCell(tot))
						if tot.N > 0 {
							probeMetrics[fmt.Sprintf("queue_share.%s.rho%s", names[k], report.F(rho))] = tot.Queue / tot.Total()
						}
					}
				}
			}
		}
		ratio.AddRow(rowR...)
		timeT.AddRow(rowT...)
		fair.AddRow(rowF...)
		if withFaults {
			lostT.AddRow(rowL...)
			degT.AddRow(rowD...)
		}
		if withOverload {
			goodT.AddRow(rowG...)
			dropT.AddRow(rowX...)
			missT.AddRow(rowM...)
			pctT.AddRow(rowP...)
		}
		if withNetfault {
			netT.AddRow(rowN...)
			resubT.AddRow(rowS...)
		}
		if withCtrl {
			ctrlLostT.AddRow(rowCL...)
			ctrlWaitT.AddRow(rowCW...)
		}
		if cvT != nil {
			cvT.AddRow(rowC...)
		}
		if shardT != nil {
			shardT.AddRow(rowK...)
		}
		if decompT != nil {
			decompT.AddRow(rowDC...)
		}
	}
	note := fmt.Sprintf("%d replications × %.3g s per point, arrival CV %.3g", reps, duration, cv)
	if withFaults {
		note += fmt.Sprintf("; failures MTBF %s, MTTR %s, fate %s",
			faultCfg.Uptime, faultCfg.Downtime, faultCfg.Fate)
	}
	if withOverload {
		note += fmt.Sprintf("; overload protection: admission %s, queue cap %d", ovCfg.Admission, ovCfg.QueueCap)
	}
	if withNetfault {
		note += "; network faults enabled (see the netfault tables)"
	}
	if withCtrl {
		note += "; control-plane faults enabled (see the control-plane tables)"
	}
	ratio.AddNote("%s", note)
	for _, s := range skipped {
		ratio.AddNote("skipped cell %s", s)
	}
	tables := []*report.Table{timeT, ratio, fair}
	if withFaults {
		tables = append(tables, lostT, degT)
	}
	if withOverload {
		tables = append(tables, goodT, dropT, missT, pctT)
	}
	if withNetfault {
		tables = append(tables, netT, resubT)
	}
	if withCtrl {
		tables = append(tables, ctrlLostT, ctrlWaitT)
	}
	if cvT != nil {
		tables = append(tables, cvT)
	}
	if shardT != nil {
		tables = append(tables, shardT)
	}
	if decompT != nil {
		tables = append(tables, decompT)
	}
	return tables, ratio, probeMetrics, nil
}

// mergedPercentiles merges the replications' streaming response-time
// histograms (same geometry by construction — one overload layer
// configuration per sweep) and formats p50/p90/p99/p999. Merging into
// the first replication's histogram is safe: its exact TimeP* fields
// were computed at finish time and the histogram is not reused.
func mergedPercentiles(runs []*cluster.Result) string {
	var acc *stats.Histogram
	for _, run := range runs {
		if run.Overload == nil || run.Overload.TimeHist == nil {
			continue
		}
		if acc == nil {
			acc = run.Overload.TimeHist
			continue
		}
		if err := acc.Merge(run.Overload.TimeHist); err != nil {
			return "-"
		}
	}
	if acc == nil || acc.N() == 0 {
		return "-"
	}
	qs := acc.Quantiles(0.50, 0.90, 0.99, 0.999)
	return fmt.Sprintf("%s / %s / %s / %s",
		report.F(qs[0]), report.F(qs[1]), report.F(qs[2]), report.F(qs[3]))
}

// decompCell formats a span aggregate as per-component percent shares
// of the summed response time.
func decompCell(tot probe.SpanStats) string {
	if tot.N == 0 {
		return "-"
	}
	t := tot.Total()
	if t <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f / %.0f / %.0f / %.0f",
		100*tot.Queue/t, 100*tot.Service/t, 100*tot.Net/t, 100*tot.Retry/t)
}

// probeCell runs one instrumented pass for a sweep cell (policy × rho)
// and returns the gap-weighted mean interarrival CV across computers,
// the gap-weighted mean interarrival CV across dispatcher replicas (NaN
// when the cell's policy ran unsharded), plus the span layer's T̄
// decomposition over counted jobs. With an events directory configured
// it writes the cell's lifecycle stream to "<dir>/<policy>-rho<rho>.jsonl".
func probeCell(cfg cluster.Config, f cluster.PolicyFactory, name string, rho float64, pp cli.ProbeParams) (float64, float64, probe.SpanStats, error) {
	var w probe.EventWriter
	var ef *os.File
	if pp.Events != "" {
		var err error
		ef, err = os.Create(filepath.Join(pp.Events, fmt.Sprintf("%s-rho%s.jsonl", name, report.F(rho))))
		if err != nil {
			return 0, 0, probe.SpanStats{}, err
		}
		w = probe.NewJSONLWriter(ef)
	}
	pb, err := probe.New(probe.Options{Metrics: pp.Probe || pp.SampleDT > 0, SampleDT: pp.SampleDT, Events: w, Spans: true})
	if err != nil {
		return 0, 0, probe.SpanStats{}, err
	}
	probe.PublishLive(pb)
	// Cells run back to back: release this cell's probe from the debug
	// endpoint once done so the live view always tracks the current cell.
	defer probe.UnpublishLive(pb)
	cfg.Probe = pb
	if _, err := cluster.Run(cfg, f()); err != nil {
		return 0, 0, probe.SpanStats{}, err
	}
	if err := pb.Flush(); err != nil {
		return 0, 0, probe.SpanStats{}, err
	}
	if ef != nil {
		if err := ef.Close(); err != nil {
			return 0, 0, probe.SpanStats{}, err
		}
	}
	var sum, n float64
	for i := range cfg.Speeds {
		cv, gaps := pb.InterarrivalCV(i)
		if gaps > 1 {
			sum += cv * float64(gaps)
			n += float64(gaps)
		}
	}
	shardCV := math.NaN()
	if pb.Shards() > 1 {
		var ksum, kn float64
		for k := 0; k < pb.Shards(); k++ {
			cv, gaps := pb.ShardCV(k)
			if gaps > 1 {
				ksum += cv * float64(gaps)
				kn += float64(gaps)
			}
		}
		if kn > 0 {
			shardCV = ksum / kn
		}
	}
	meanCV := 0.0
	if n > 0 {
		meanCV = sum / n
	}
	return meanCV, shardCV, pb.SpanTotals(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
