package main

import (
	"math"
	"strings"
	"testing"

	"heterosched/internal/cli"
	"heterosched/internal/cluster"
	"heterosched/internal/dist"
	"heterosched/internal/faults"
)

func TestSweepValues(t *testing.T) {
	got := sweepValues(0.3, 0.9, 0.2)
	want := []float64{0.3, 0.5, 0.7, 0.9}
	if len(got) != len(want) {
		t.Fatalf("values = %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("value[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if sweepValues(0.9, 0.3, 0.1) != nil {
		t.Error("inverted range accepted")
	}
	if sweepValues(0.3, 0.9, 0) != nil {
		t.Error("zero step accepted")
	}
	if got := sweepValues(0.5, 0.5, 0.1); len(got) != 1 {
		t.Errorf("single point = %v", got)
	}
}

func TestSweepPolicyNames(t *testing.T) {
	cases := map[string]string{
		"ORR":      "ORR",
		"ll":       "LL",
		"JSQ2":     "JSQ(2)",
		"ORRcap.8": "ORRcap(0.8)",
		"ORR-10":   "ORR(-10%)",
	}
	for in, want := range cases {
		f, err := cli.ParsePolicy(in, cli.PolicyOptions{Computers: 2})
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", in, err)
			continue
		}
		if got := f().Name(); got != want {
			t.Errorf("ParsePolicy(%q).Name() = %q, want %q", in, got, want)
		}
	}
	if _, err := cli.ParsePolicy("nope", cli.PolicyOptions{}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunSweepSmoke(t *testing.T) {
	names, factories, err := cli.ParsePolicies("ORR,WRR", cli.PolicyOptions{Computers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tables, csvT, err := runSweep([]float64{1, 2}, []float64{0.4, 0.6}, names, factories,
		5000, 2, 1, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("got %d tables", len(tables))
	}
	out := csvT.String()
	if !strings.Contains(out, "ORR") || !strings.Contains(out, "0.6") {
		t.Errorf("csv table missing content:\n%s", out)
	}
}

// TestRunSweepWithFaults: a fault-enabled sweep grows the lost-jobs and
// degraded-response tables.
func TestRunSweepWithFaults(t *testing.T) {
	fc := &faults.Config{
		Uptime:   dist.NewExponential(2e3),
		Downtime: dist.NewExponential(200),
		Fate:     faults.RequeueToDispatcher,
	}
	var factories []cluster.PolicyFactory
	names := []string{"ORR"}
	f, err := cli.ParsePolicy("ORR", cli.PolicyOptions{Computers: 2, Faults: fc})
	if err != nil {
		t.Fatal(err)
	}
	factories = append(factories, f)
	tables, _, err := runSweep([]float64{1, 2}, []float64{0.3}, names, factories,
		1e4, 2, 1, 1, fc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 5 {
		t.Fatalf("got %d tables, want 5 (3 metrics + lost + degraded)", len(tables))
	}
	if s := tables[3].String(); !strings.Contains(s, "jobs lost") {
		t.Errorf("missing lost table:\n%s", s)
	}
}

// TestRunSweepWithOverload: an overload-enabled sweep may cross rho = 1
// and grows the goodput, drops and deadline-miss tables.
func TestRunSweepWithOverload(t *testing.T) {
	ovCfg, err := cli.OverloadParams{
		QCap: "30", Admit: "reject-when-full", Deadline: "exp:800", Retry: 1,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	names, factories, err := cli.ParsePolicies("ORR", cli.PolicyOptions{Computers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tables, _, err := runSweep([]float64{1, 2}, []float64{0.8, 1.2}, names, factories,
		1e4, 2, 1, 1, nil, ovCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 6 {
		t.Fatalf("got %d tables, want 6 (3 metrics + goodput + drops + misses)", len(tables))
	}
	good := tables[3].String()
	if !strings.Contains(good, "goodput") {
		t.Errorf("missing goodput table:\n%s", good)
	}
	if drops := tables[4].String(); !strings.Contains(drops, "dropped") {
		t.Errorf("missing drops table:\n%s", drops)
	}
}
