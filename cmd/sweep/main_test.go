package main

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"heterosched/internal/cli"
	"heterosched/internal/cluster"
	"heterosched/internal/dist"
	"heterosched/internal/faults"
	"heterosched/internal/sim"
)

func TestSweepValues(t *testing.T) {
	got := sweepValues(0.3, 0.9, 0.2)
	want := []float64{0.3, 0.5, 0.7, 0.9}
	if len(got) != len(want) {
		t.Fatalf("values = %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("value[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if sweepValues(0.9, 0.3, 0.1) != nil {
		t.Error("inverted range accepted")
	}
	if sweepValues(0.3, 0.9, 0) != nil {
		t.Error("zero step accepted")
	}
	if got := sweepValues(0.5, 0.5, 0.1); len(got) != 1 {
		t.Errorf("single point = %v", got)
	}
}

func TestSweepPolicyNames(t *testing.T) {
	cases := map[string]string{
		"ORR":      "ORR",
		"ll":       "LL",
		"JSQ2":     "JSQ(2)",
		"ORRcap.8": "ORRcap(0.8)",
		"ORR-10":   "ORR(-10%)",
	}
	for in, want := range cases {
		f, err := cli.ParsePolicy(in, cli.PolicyOptions{Computers: 2})
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", in, err)
			continue
		}
		if got := f().Name(); got != want {
			t.Errorf("ParsePolicy(%q).Name() = %q, want %q", in, got, want)
		}
	}
	if _, err := cli.ParsePolicy("nope", cli.PolicyOptions{}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunSweepSmoke(t *testing.T) {
	names, factories, err := cli.ParsePolicies("ORR,WRR", cli.PolicyOptions{Computers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tables, csvT, _, err := runSweep([]float64{1, 2}, []float64{0.4, 0.6}, names, factories,
		5000, 2, 1, 1, nil, nil, nil, nil, nil, nil, cli.ProbeParams{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("got %d tables", len(tables))
	}
	out := csvT.String()
	if !strings.Contains(out, "ORR") || !strings.Contains(out, "0.6") {
		t.Errorf("csv table missing content:\n%s", out)
	}
}

// TestRunSweepWithFaults: a fault-enabled sweep grows the lost-jobs and
// degraded-response tables.
func TestRunSweepWithFaults(t *testing.T) {
	fc := &faults.Config{
		Uptime:   dist.NewExponential(2e3),
		Downtime: dist.NewExponential(200),
		Fate:     faults.RequeueToDispatcher,
	}
	var factories []cluster.PolicyFactory
	names := []string{"ORR"}
	f, err := cli.ParsePolicy("ORR", cli.PolicyOptions{Computers: 2, Faults: fc})
	if err != nil {
		t.Fatal(err)
	}
	factories = append(factories, f)
	tables, _, _, err := runSweep([]float64{1, 2}, []float64{0.3}, names, factories,
		1e4, 2, 1, 1, fc, nil, nil, nil, nil, nil, cli.ProbeParams{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 5 {
		t.Fatalf("got %d tables, want 5 (3 metrics + lost + degraded)", len(tables))
	}
	if s := tables[3].String(); !strings.Contains(s, "jobs lost") {
		t.Errorf("missing lost table:\n%s", s)
	}
}

// TestRunSweepWithOverload: an overload-enabled sweep may cross rho = 1
// and grows the goodput, drops and deadline-miss tables.
func TestRunSweepWithOverload(t *testing.T) {
	ovCfg, err := cli.OverloadParams{
		QCap: "30", Admit: "reject-when-full", Deadline: "exp:800", Retry: 1,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	names, factories, err := cli.ParsePolicies("ORR", cli.PolicyOptions{Computers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tables, _, _, err := runSweep([]float64{1, 2}, []float64{0.8, 1.2}, names, factories,
		1e4, 2, 1, 1, nil, ovCfg, nil, nil, nil, nil, cli.ProbeParams{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 7 {
		t.Fatalf("got %d tables, want 7 (3 metrics + goodput + drops + misses + streaming percentiles)", len(tables))
	}
	good := tables[3].String()
	if !strings.Contains(good, "goodput") {
		t.Errorf("missing goodput table:\n%s", good)
	}
	if drops := tables[4].String(); !strings.Contains(drops, "dropped") {
		t.Errorf("missing drops table:\n%s", drops)
	}
	if pct := tables[6].String(); !strings.Contains(pct, "p50/p90/p99/p999") {
		t.Errorf("missing streaming percentile table:\n%s", pct)
	}
}

// TestRunSweepWithProbe: a probe-enabled sweep grows the interarrival-CV
// table, writes one event stream per cell into the events directory, and
// returns per-cell metrics for the manifest.
func TestRunSweepWithProbe(t *testing.T) {
	dir := t.TempDir()
	names, factories, err := cli.ParsePolicies("ORR,ORAN", cli.PolicyOptions{Computers: 2})
	if err != nil {
		t.Fatal(err)
	}
	pp := cli.ProbeParams{Probe: true, Events: dir}
	tables, _, metrics, err := runSweep([]float64{1, 2}, []float64{0.5}, names, factories,
		1e4, 1, 1, 1, nil, nil, nil, nil, nil, nil, pp, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 5 {
		t.Fatalf("got %d tables, want 5 (3 metrics + interarrival CV + decomposition)", len(tables))
	}
	if s := tables[3].String(); !strings.Contains(s, "interarrival CV") {
		t.Errorf("missing CV table:\n%s", s)
	}
	for _, want := range []string{"interarrival_cv.ORR.rho0.5", "interarrival_cv.ORAN.rho0.5"} {
		if _, ok := metrics[want]; !ok {
			t.Errorf("manifest metrics missing %q (have %v)", want, metrics)
		}
	}
	// The §3 ordering: ORR's substreams are smoother than ORAN's.
	if !(metrics["interarrival_cv.ORR.rho0.5"] < metrics["interarrival_cv.ORAN.rho0.5"]) {
		t.Errorf("interarrival CV: ORR %v not below ORAN %v",
			metrics["interarrival_cv.ORR.rho0.5"], metrics["interarrival_cv.ORAN.rho0.5"])
	}
	for _, f := range []string{"ORR-rho0.5.jsonl", "ORAN-rho0.5.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing cell event stream: %v", err)
		}
	}
}

// badInitPolicy fails at Init, standing in for any per-cell setup error
// (e.g. alloc.ErrBadInput on a degenerate grid point).
type badInitPolicy struct{}

func (badInitPolicy) Name() string                { return "BAD" }
func (badInitPolicy) Init(*cluster.Context) error { return errors.New("synthetic cell failure") }
func (badInitPolicy) Select(*sim.Job) int         { return 0 }
func (badInitPolicy) Departed(*sim.Job)           {}

// TestRunSweepSkipsBadCells: a cell whose run fails must not abort the
// sweep — its cells render "-" in every table, a note names the cell,
// and the healthy policy's column still fills in.
func TestRunSweepSkipsBadCells(t *testing.T) {
	names, factories, err := cli.ParsePolicies("ORR", cli.PolicyOptions{Computers: 2})
	if err != nil {
		t.Fatal(err)
	}
	names = append(names, "BAD")
	factories = append(factories, func() cluster.Policy { return badInitPolicy{} })
	tables, csvT, _, err := runSweep([]float64{1, 2}, []float64{0.4, 0.6}, names, factories,
		5000, 2, 1, 1, nil, nil, nil, nil, nil, nil, cli.ProbeParams{}, false)
	if err != nil {
		t.Fatalf("sweep aborted on a bad cell: %v", err)
	}
	// A skipped cell renders as a lone "-" in the BAD column (the last
	// cell of each data row), never as a number.
	cell := regexp.MustCompile(`(?m)^0\.4\s+\S+\s+-\s*$`)
	ratio := tables[1].String()
	if !cell.MatchString(ratio) {
		t.Errorf("ratio table missing skipped-cell placeholder:\n%s", ratio)
	}
	if !strings.Contains(ratio, "skipped cell BAD at rho=0.4: ") ||
		!strings.Contains(ratio, "synthetic cell failure") {
		t.Errorf("ratio table missing skip note:\n%s", ratio)
	}
	// The healthy column still has numeric cells.
	if out := csvT.String(); !strings.Contains(out, "ORR") {
		t.Errorf("csv table lost the healthy policy:\n%s", out)
	}
	for _, tb := range tables[:3] {
		if s := tb.String(); !cell.MatchString(s) {
			t.Errorf("table missing placeholder:\n%s", s)
		}
	}
}

// TestRunSweepWithDrift: drift plus an adaptive ORR sweep runs end to
// end and keeps its tables; the adaptive loop needs a Replannable
// policy, which ORR is.
func TestRunSweepWithDrift(t *testing.T) {
	names, factories, err := cli.ParsePolicies("ORR", cli.PolicyOptions{Computers: 2})
	if err != nil {
		t.Fatal(err)
	}
	driftCfg, adaptCfg, err := cli.DriftParams{
		Drift:  "lstep:5000:2",
		Replan: "100:0.85:500",
	}.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	tables, _, _, err := runSweep([]float64{1, 2}, []float64{0.4}, names, factories,
		1e4, 2, 1, 1, nil, nil, driftCfg, adaptCfg, nil, nil, cli.ProbeParams{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("got %d tables, want 3", len(tables))
	}
	if s := tables[1].String(); strings.Contains(s, "skipped cell") {
		t.Errorf("drift sweep produced skipped cells:\n%s", s)
	}
}

// TestRunSweepWithNetfault: a netfault-enabled sweep grows the
// network-loss and resubmission tables.
func TestRunSweepWithNetfault(t *testing.T) {
	nfCfg, err := cli.NetfaultParams{Netfault: "loss:0.1,lat:2", AckTO: "25:2"}.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	names, factories, err := cli.ParsePolicies("ORR", cli.PolicyOptions{Computers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tables, _, _, err := runSweep([]float64{1, 2}, []float64{0.4}, names, factories,
		1e4, 2, 1, 1, nil, nil, nil, nil, nfCfg, nil, cli.ProbeParams{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 5 {
		t.Fatalf("got %d tables, want 5 (3 metrics + net-lost + resubmits)", len(tables))
	}
	if s := tables[3].String(); !strings.Contains(s, "lost to the network") {
		t.Errorf("missing net-lost table:\n%s", s)
	}
	if s := tables[4].String(); !strings.Contains(s, "resubmissions") {
		t.Errorf("missing resubmission table:\n%s", s)
	}
}

// TestRunSweepWithCtrl: a control-plane-enabled sweep grows the control
// loss and query-wait tables; the query-wait cell is "-" for a policy
// that issues no probes (static ORR) and numeric for one that does
// (jsq(2) — and jiq too, whose empty-token fallback samples queues).
func TestRunSweepWithCtrl(t *testing.T) {
	ctrlCfg, err := cli.CtrlParams{Ctrl: "loss:0.2,lat:2,lease:300,qto:30"}.Build(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	names, factories, err := cli.ParsePolicies("ORR,jsq(2)", cli.PolicyOptions{Computers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tables, _, _, err := runSweep([]float64{1, 2}, []float64{0.4}, names, factories,
		1e4, 2, 1, 1, nil, nil, nil, nil, nil, ctrlCfg, cli.ProbeParams{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 5 {
		t.Fatalf("got %d tables, want 5 (3 metrics + ctrl-lost + query wait)", len(tables))
	}
	lost := tables[3].String()
	if !strings.Contains(lost, "control messages lost") {
		t.Errorf("missing control-loss table:\n%s", lost)
	}
	wait := tables[4].String()
	if !strings.Contains(wait, "query wait") {
		t.Errorf("missing query-wait table:\n%s", wait)
	}
	// ORR (first policy column) never probes: its wait cell is "-";
	// jsq(2) (last column) probes every decision: numeric.
	cell := regexp.MustCompile(`(?m)^0\.4\s+-\s+\S+\s*$`)
	if !cell.MatchString(wait) {
		t.Errorf("query-wait row shape wrong (want ORR \"-\", jsq numeric):\n%s", wait)
	}
}
