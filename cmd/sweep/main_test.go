package main

import (
	"heterosched/internal/cluster"
	"math"
	"strings"
	"testing"
)

func TestSweepValues(t *testing.T) {
	got := sweepValues(0.3, 0.9, 0.2)
	want := []float64{0.3, 0.5, 0.7, 0.9}
	if len(got) != len(want) {
		t.Fatalf("values = %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("value[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if sweepValues(0.9, 0.3, 0.1) != nil {
		t.Error("inverted range accepted")
	}
	if sweepValues(0.3, 0.9, 0) != nil {
		t.Error("zero step accepted")
	}
	if got := sweepValues(0.5, 0.5, 0.1); len(got) != 1 {
		t.Errorf("single point = %v", got)
	}
}

func TestSweepPolicyFactory(t *testing.T) {
	cases := map[string]string{
		"ORR":      "ORR",
		"ll":       "LL",
		"JSQ2":     "JSQ(2)",
		"ORRcap.8": "ORRcap(0.8)",
		"ORR-10":   "ORR(-10%)",
	}
	for in, want := range cases {
		f, err := policyFactory(in)
		if err != nil {
			t.Errorf("policyFactory(%q): %v", in, err)
			continue
		}
		if got := f().Name(); got != want {
			t.Errorf("policyFactory(%q).Name() = %q, want %q", in, got, want)
		}
	}
	if _, err := policyFactory("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunSweepSmoke(t *testing.T) {
	names := []string{"ORR", "WRR"}
	var factories []cluster.PolicyFactory
	for _, n := range names {
		f, err := policyFactory(n)
		if err != nil {
			t.Fatal(err)
		}
		factories = append(factories, f)
	}
	tables, csvT, err := runSweep([]float64{1, 2}, []float64{0.4, 0.6}, names, factories,
		5000, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("got %d tables", len(tables))
	}
	out := csvT.String()
	if !strings.Contains(out, "ORR") || !strings.Contains(out, "0.6") {
		t.Errorf("csv table missing content:\n%s", out)
	}
}
