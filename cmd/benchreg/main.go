// Command benchreg is the benchmark-regression harness front end. It runs
// the repository's benchmark suites (`go test -bench -benchmem`),
// normalizes the output into a schema-versioned JSON report (see
// internal/benchreg), and gates changes against a committed baseline.
//
// Modes (first argument):
//
//	benchreg baseline -out BENCH_2026-08-06.json
//	    Run the suites and write a new baseline report.
//
//	benchreg check -baseline BENCH_2026-08-06.json [-save current.json]
//	    Run the suites, compare against the baseline, print the delta
//	    table and exit non-zero on any hot-path regression: ns/op worse
//	    than -threshold, or ANY allocs/op increase. This is `make
//	    benchcheck`.
//
//	benchreg run [-save current.json]
//	    Run the suites and print the normalized report without comparing.
//
// All modes accept -input FILE to parse previously captured `go test
// -bench` output (raw text or `go test -json`) instead of running the
// benchmarks — useful for archiving CI logs or re-checking an old run.
//
// ns/op is hardware-dependent: compare against baselines recorded on
// similar hardware, and give CI extra -threshold headroom. allocs/op is
// exact on any machine; the zero-allocation hot path is enforced
// everywhere.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"

	"heterosched/internal/benchreg"
	"heterosched/internal/probe"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	mode := os.Args[1]
	fs := flag.NewFlagSet("benchreg "+mode, flag.ExitOnError)
	var (
		pkgs      = fs.String("pkgs", ".,./internal/sim,./internal/stats", "comma-separated packages whose benchmarks to run (root macro suite + engine and estimator micro-benchmarks)")
		benchPat  = fs.String("bench", ".", "benchmark name pattern passed to -bench")
		benchtime = fs.String("benchtime", "1s", "per-benchmark measuring time passed to -benchtime")
		count     = fs.Int("count", 3, "benchmark repetitions passed to -count; repeats are merged best-of to shed scheduling noise")
		input     = fs.String("input", "", "parse this `go test -bench` output file ('-' for stdin) instead of running")
		save      = fs.String("save", "", "write the normalized current report to this JSON file")
		out       = fs.String("out", "", "baseline mode: write the baseline report to this JSON file")
		baseline  = fs.String("baseline", "", "check mode: baseline JSON report to compare against")
		threshold = fs.Float64("threshold", 0.10, "tolerated relative ns/op regression on hot benchmarks (0 disables the ns gate)")
		hot       = fs.String("hot", "", "comma-separated hot-path name prefixes (default: the engine hot-path set)")
	)
	fs.Parse(os.Args[2:])

	switch mode {
	case "run", "check", "baseline":
	default:
		usage()
	}
	if mode == "baseline" && *out == "" {
		fatal(fmt.Errorf("baseline mode requires -out"))
	}
	if mode == "check" && *baseline == "" {
		fatal(fmt.Errorf("check mode requires -baseline"))
	}

	cur, err := currentReport(*input, *pkgs, *benchPat, *benchtime, *count)
	if err != nil {
		fatal(err)
	}
	if len(cur.Results) == 0 {
		fatal(fmt.Errorf("no benchmark results parsed — wrong -pkgs/-bench, or a failed run"))
	}
	cur.Date = time.Now().UTC().Format("2006-01-02")
	cur.Git = probe.GitDescribe(".")

	if *save != "" {
		if err := cur.Save(*save); err != nil {
			fatal(err)
		}
		fmt.Printf("benchreg: wrote %s (%d benchmarks)\n", *save, len(cur.Results))
	}

	switch mode {
	case "baseline":
		if err := cur.Save(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("benchreg: wrote baseline %s (%d benchmarks, git %s)\n", *out, len(cur.Results), cur.Git)

	case "run":
		for _, r := range cur.Results {
			extra := ""
			if v, ok := r.Metrics["events/s"]; ok {
				extra = fmt.Sprintf("  %.4g events/s", v)
			}
			allocs := "n/a"
			if r.AllocsPerOp >= 0 {
				allocs = fmt.Sprintf("%v", r.AllocsPerOp)
			}
			fmt.Printf("%-44s %12.4g ns/op  %8s allocs/op%s\n", r.Name, r.NsPerOp, allocs, extra)
		}

	case "check":
		base, err := benchreg.Load(*baseline)
		if err != nil {
			fatal(err)
		}
		th := benchreg.Thresholds{MaxNsRegression: *threshold}
		if *hot != "" {
			th.HotPrefixes = strings.Split(*hot, ",")
		}
		deltas, cmpErr := benchreg.Compare(base, cur, th)
		fmt.Printf("benchreg: baseline %s (%s, git %s) vs current (git %s)\n",
			*baseline, base.Date, base.Git, cur.Git)
		fmt.Print(benchreg.FormatDeltas(deltas))
		if cmpErr != nil {
			fatal(cmpErr)
		}
		fmt.Println("benchreg: ok — no hot-path regressions")
	}
}

// currentReport obtains the current measurements: by parsing a captured
// output file, or by running `go test -bench` over the requested packages.
func currentReport(input, pkgs, benchPat, benchtime string, count int) (*benchreg.Report, error) {
	if input != "" {
		var r io.Reader
		if input == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(input)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			r = f
		}
		return benchreg.Parse(r)
	}

	var combined bytes.Buffer
	for _, pkg := range strings.Split(pkgs, ",") {
		pkg = strings.TrimSpace(pkg)
		if pkg == "" {
			continue
		}
		args := []string{"test", "-run", "^$", "-bench", benchPat, "-benchmem",
			"-benchtime", benchtime, "-count", fmt.Sprint(count), pkg}
		fmt.Fprintf(os.Stderr, "benchreg: go %s\n", strings.Join(args, " "))
		cmd := exec.Command("go", args...)
		cmd.Stdout = io.MultiWriter(&combined, os.Stderr)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("go test -bench %s: %w", pkg, err)
		}
	}
	return benchreg.Parse(&combined)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: benchreg <run|check|baseline> [flags]
  benchreg baseline -out BENCH_<date>.json
  benchreg check -baseline BENCH_<date>.json [-threshold 0.10] [-save cur.json]
  benchreg run [-save cur.json]
run 'benchreg <mode> -h' for flags`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchreg:", err)
	os.Exit(1)
}
