// Command probecheck validates observability artifacts produced by an
// instrumented simulation run: run manifests (-manifest) and JSONL
// lifecycle event streams (-events). It prints one summary line per
// artifact; on a violating stream it prints every collected violation
// with its line number, a summary carrying the total count, and exits
// non-zero — making it the assertion step of the CI probe smoke test
// and of scripted experiment pipelines.
//
// Usage:
//
//	probecheck -manifest run.json -events events.jsonl [-require-terminal]
//
// The event verification replays the stream against the lifecycle
// invariants: known event kinds, globally non-decreasing timestamps,
// exactly one arrival per job (and first), per-job time monotonicity,
// service starts only after dispatches, and at most one terminal event
// (departure, kill or drop) per job with nothing after it. Network-layer
// events are covered too: resubmissions and duplicate deliveries require
// a prior dispatch, and a deduplicated stale delivery is the only event
// permitted after a job's terminal — so a verified stream proves
// exactly-once terminal accounting even under loss, duplication and
// resubmission. With -require-terminal every arrived job must also
// reach a terminal event — appropriate for drained runs, which all
// front ends produce.
//
// With -spans, a Chrome trace-event JSON span export (the producing
// side's -spans flag) is validated for well-formedness: every job has
// exactly one terminal "job" root span, child phase spans nest inside
// their root's bounds, no span has a negative or non-finite duration,
// and each root's queue/service/net/retry components sum to its
// duration. When a manifest is also given, its spans section must agree
// with the export's root count.
//
// Only JSONL streams are verified; CSV event files (an -events path
// with a .csv suffix on the producing side) are for spreadsheet import
// and carry the same rows without the verification support.
package main

import (
	"flag"
	"fmt"
	"os"

	"heterosched/internal/probe"
)

func main() {
	manifestPath := flag.String("manifest", "", "run manifest JSON to validate")
	eventsPath := flag.String("events", "", "JSONL lifecycle event stream to verify")
	spansPath := flag.String("spans", "", "Chrome trace-event JSON span export to validate")
	requireTerminal := flag.Bool("require-terminal", false, "require every arrived job to reach a terminal event")
	flag.Parse()

	if *manifestPath == "" && *eventsPath == "" && *spansPath == "" {
		fmt.Fprintln(os.Stderr, "probecheck: nothing to check (want -manifest, -events and/or -spans)")
		os.Exit(2)
	}

	var manifest *probe.Manifest
	if *manifestPath != "" {
		m, err := probe.ReadManifest(*manifestPath)
		if err != nil {
			fatal(err)
		}
		manifest = m
		fmt.Printf("manifest %s: ok (tool %s, schema %d, seed %d, %d metrics, sim time %.4g s)\n",
			*manifestPath, m.Tool, m.Schema, m.Seed, len(m.Metrics), m.SimTime)
		if m.Spans != nil {
			fmt.Printf("manifest %s: spans section ok (format %s, %d rows, %d roots, %d counted)\n",
				*manifestPath, m.Spans.Format, len(m.Spans.Rows), m.Spans.Roots, m.Spans.Counted)
		}
	}

	if *spansPath != "" {
		f, err := os.Open(*spansPath)
		if err != nil {
			fatal(err)
		}
		st, err := probe.VerifySpans(f)
		if cerr := f.Close(); err == nil && cerr != nil {
			fatal(cerr)
		}
		if err != nil {
			for _, v := range st.Details {
				fmt.Fprintf(os.Stderr, "probecheck: %s: %s\n", *spansPath, v)
			}
			fmt.Printf("spans %s: FAILED (%d violations in %d events, %d jobs, %d roots)\n",
				*spansPath, st.Violations, st.Events, st.Jobs, st.Roots)
			os.Exit(1)
		}
		fmt.Printf("spans %s: ok (%d events, %d jobs, %d roots, %d child spans, 0 violations)\n",
			*spansPath, st.Events, st.Jobs, st.Roots, st.Children)
		if manifest != nil && manifest.Spans != nil && manifest.Spans.Roots != st.Roots {
			fmt.Printf("spans %s: FAILED (manifest declares %d roots, export has %d)\n",
				*spansPath, manifest.Spans.Roots, st.Roots)
			os.Exit(1)
		}
	}

	if *eventsPath != "" {
		f, err := os.Open(*eventsPath)
		if err != nil {
			fatal(err)
		}
		st, err := probe.VerifyJSONL(f, *requireTerminal)
		if cerr := f.Close(); err == nil && cerr != nil {
			fatal(cerr)
		}
		if err != nil {
			// The verifier scans the whole stream and collects every
			// violation; print them all (details are capped upstream),
			// then the count, and fail.
			for _, v := range st.Details {
				fmt.Fprintf(os.Stderr, "probecheck: %s: %s\n", *eventsPath, v)
			}
			fmt.Printf("events %s: FAILED (%d invariant violations in %d events, %d jobs, %d terminated)\n",
				*eventsPath, st.Violations, st.Events, st.Jobs, st.Terminated)
			os.Exit(1)
		}
		fmt.Printf("events %s: ok (%d events, %d jobs, %d terminated, 0 violations)\n",
			*eventsPath, st.Events, st.Jobs, st.Terminated)
		if st.Resubmits > 0 || st.DupDeliveries > 0 {
			// The dedup⇒exactly-once guarantee: jobs that saw duplicate
			// deliveries still terminated exactly once (a second terminal —
			// or anything but a dup-deliver after one — fails verification
			// above), and stale copies landed after terminals without
			// perturbing them.
			fmt.Printf("events %s: network layer ok (%d resubmits, %d dup deliveries, %d stale, %d dup'd jobs terminated exactly once)\n",
				*eventsPath, st.Resubmits, st.DupDeliveries, st.StaleDeliveries, st.DupJobsTerminated)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "probecheck:", err)
	os.Exit(1)
}
