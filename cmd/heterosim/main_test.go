package main

import (
	"testing"
)

func TestParseSpeeds(t *testing.T) {
	got, err := parseSpeeds("1, 1.5 ,2,,10")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1.5, 2, 10}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("speed[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := parseSpeeds(""); err == nil {
		t.Error("empty speeds accepted")
	}
	if _, err := parseSpeeds("1,abc"); err == nil {
		t.Error("non-numeric speed accepted")
	}
}

func TestPolicyFactoryNames(t *testing.T) {
	cases := map[string]string{
		"WRAN":   "WRAN",
		"oran":   "ORAN",
		"wrr":    "WRR",
		"ORR":    "ORR",
		"LL":     "LL",
		"LL*":    "LL*",
		"ORR-10": "ORR(-10%)",
		"ORR+5":  "ORR(+5%)",
	}
	for in, want := range cases {
		f, err := policyFactory(in)
		if err != nil {
			t.Errorf("policyFactory(%q): %v", in, err)
			continue
		}
		if got := f().Name(); got != want {
			t.Errorf("policyFactory(%q).Name() = %q, want %q", in, got, want)
		}
	}
	if _, err := policyFactory("bogus"); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := policyFactory("ORRxx"); err == nil {
		t.Error("malformed ORR error accepted")
	}
}
