package main

import (
	"testing"

	"heterosched/internal/cli"
)

// TestPolicyNames checks the mnemonic → policy-name mapping through the
// shared CLI parser used by this command.
func TestPolicyNames(t *testing.T) {
	cases := map[string]string{
		"WRAN":   "WRAN",
		"oran":   "ORAN",
		"wrr":    "WRR",
		"ORR":    "ORR",
		"LL":     "LL",
		"LL*":    "LL*",
		"ORR-10": "ORR(-10%)",
		"ORR+5":  "ORR(+5%)",
	}
	for in, want := range cases {
		f, err := cli.ParsePolicy(in, cli.PolicyOptions{Computers: 4})
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", in, err)
			continue
		}
		if got := f().Name(); got != want {
			t.Errorf("ParsePolicy(%q).Name() = %q, want %q", in, got, want)
		}
	}
	if _, err := cli.ParsePolicy("bogus", cli.PolicyOptions{}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := cli.ParsePolicy("ORRxx", cli.PolicyOptions{}); err == nil {
		t.Error("malformed ORR error accepted")
	}
}
