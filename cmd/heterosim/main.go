// Command heterosim runs one job-scheduling simulation and reports the
// paper's metrics.
//
// Usage:
//
//	heterosim -speeds 1,1,1,1,10,10 -rho 0.7 -policy ORR -duration 4e5 -reps 5
//
// Policies: WRAN, ORAN, WRR, ORR, LL (Dynamic Least-Load), LL* (instant
// updates), ORR+e / ORR-e (load estimation error e%, e.g. ORR-10).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"heterosched/internal/cluster"
	"heterosched/internal/dist"
	"heterosched/internal/report"
	"heterosched/internal/sched"
	"heterosched/internal/sim"
	"heterosched/internal/trace"
)

func main() {
	speedsFlag := flag.String("speeds", "1,1,1,1,10,10", "comma-separated relative computer speeds")
	rho := flag.Float64("rho", 0.7, "system utilization in [0,1)")
	policyFlag := flag.String("policy", "ORR", "policy: WRAN, ORAN, WRR, ORR, LL, LL*, ORR±e (e.g. ORR-10)")
	duration := flag.Float64("duration", 4e5, "simulated seconds per replication (paper: 4e6)")
	reps := flag.Int("reps", 3, "independent replications (paper: 10)")
	seed := flag.Uint64("seed", 1, "root random seed")
	cv := flag.Float64("cv", 3.0, "arrival inter-arrival coefficient of variation (1 = Poisson)")
	expSizes := flag.Bool("expsizes", false, "use exponential job sizes instead of Bounded Pareto")
	meanSize := flag.Float64("meansize", 76.8, "mean job size when -expsizes is set")
	quantum := flag.Float64("quantum", 0, "if > 0, use quantum round-robin servers instead of PS")
	traceFile := flag.String("trace", "", "write a per-job CSV trace of replication 0 to this file")
	flag.Parse()

	speeds, err := parseSpeeds(*speedsFlag)
	if err != nil {
		fatal(err)
	}
	factory, err := policyFactory(*policyFlag)
	if err != nil {
		fatal(err)
	}

	cfg := cluster.Config{
		Speeds:      speeds,
		Utilization: *rho,
		Duration:    *duration,
		Seed:        *seed,
		ArrivalCV:   *cv,
	}
	if *cv == 1 {
		cfg.ExponentialArrivals = true
	}
	if *expSizes {
		cfg.JobSize = dist.NewExponential(*meanSize)
	}
	if *quantum > 0 {
		cfg.Discipline = cluster.RR
		cfg.Quantum = *quantum
	}

	if *traceFile != "" {
		// Trace replication 0 in a dedicated pass so the replicated runs
		// below stay parallel and trace-free.
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		w := trace.NewWriter(f)
		tcfg := cfg
		tcfg.OnDeparture = func(j *sim.Job) { _ = w.Record(j) }
		if _, err := cluster.Run(tcfg, factory()); err != nil {
			fatal(err)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceFile)
	}

	res, err := cluster.RunReplications(cfg, factory, *reps)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("policy %s on %d computers at rho=%.4g (%d reps × %.4g s)\n\n",
		res.Policy, len(speeds), *rho, *reps, *duration)
	t := report.NewTable("metrics (mean ±95% CI across replications)", "metric", "value")
	t.AddRow("mean response time (s)", report.MeanCI(res.MeanResponseTime.Mean, res.MeanResponseTime.CI95))
	t.AddRow("mean response ratio", report.MeanCI(res.MeanResponseRatio.Mean, res.MeanResponseRatio.CI95))
	t.AddRow("fairness (sd of ratio)", report.MeanCI(res.Fairness.Mean, res.Fairness.CI95))
	r0 := res.Runs[0]
	t.AddRow("resp ratio p50/p95/p99 (rep 0)",
		fmt.Sprintf("%s / %s / %s", report.F(r0.RatioP50), report.F(r0.RatioP95), report.F(r0.RatioP99)))
	if _, err := t.WriteTo(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Println()

	pt := report.NewTable("per-computer", "computer", "speed", "job share %", "utilization %")
	for i := range speeds {
		pt.AddRow(strconv.Itoa(i+1), report.F(speeds[i]),
			report.Pct(res.JobFractions[i]), report.Pct(res.Utilizations[i]))
	}
	if _, err := pt.WriteTo(os.Stdout); err != nil {
		fatal(err)
	}
}

// policyFactory parses a policy mnemonic into a factory.
func policyFactory(name string) (cluster.PolicyFactory, error) {
	switch strings.ToUpper(name) {
	case "WRAN":
		return func() cluster.Policy { return sched.WRAN() }, nil
	case "ORAN":
		return func() cluster.Policy { return sched.ORAN() }, nil
	case "WRR":
		return func() cluster.Policy { return sched.WRR() }, nil
	case "ORR":
		return func() cluster.Policy { return sched.ORR() }, nil
	case "LL":
		return func() cluster.Policy { return sched.NewLeastLoad() }, nil
	case "LL*":
		return func() cluster.Policy { return &sched.LeastLoad{Instant: true} }, nil
	}
	// ORR with estimation error, e.g. "ORR-10" or "ORR+5".
	upper := strings.ToUpper(name)
	if strings.HasPrefix(upper, "ORR") {
		pct, err := strconv.ParseFloat(upper[3:], 64)
		if err == nil {
			rel := pct / 100
			return func() cluster.Policy { return sched.ORRWithLoadErrorUnstable(rel) }, nil
		}
	}
	return nil, fmt.Errorf("unknown policy %q", name)
}

func parseSpeeds(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	speeds := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad speed %q: %v", p, err)
		}
		speeds = append(speeds, v)
	}
	if len(speeds) == 0 {
		return nil, fmt.Errorf("no speeds given")
	}
	return speeds, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "heterosim:", err)
	os.Exit(1)
}
