// Command heterosim runs one job-scheduling simulation and reports the
// paper's metrics.
//
// Usage:
//
//	heterosim -speeds 1,1,1,1,10,10 -rho 0.7 -policy ORR -duration 4e5 -reps 5
//
// Policies: WRAN, ORAN, WRR, ORR, LL (Dynamic Least-Load), LL* (instant
// updates), JSQ2, ORRA (availability-aware; needs -mtbf), ORRCAPx,
// ORR+e / ORR-e (load estimation error e%, e.g. ORR-10).
//
// Failure injection: set -mtbf and -mttr (exponential means) to make
// computers fail and recover; -fate selects what happens to interrupted
// jobs, -realloc whether static policies re-solve their allocation over
// the survivors.
//
// Overload protection: -qcap bounds each computer's queue, -admit picks
// an admission policy, -deadline attaches per-job deadlines, and
// -timeout/-retry/-backoff/-breaker give the dispatcher timeouts with
// exponential backoff and per-computer circuit breakers. With any of
// these set, the run reports goodput vs. throughput and the drop
// breakdown; rho may exceed 1 to study saturation.
//
// Parameter drift and adaptation: -drift perturbs the ground truth
// mid-run (arrival-rate steps/ramps/cycles, per-computer speed steps,
// one-shot misestimation of the planner inputs) while -replan arms a
// stability watchdog that re-solves the static allocation from online
// estimates of lambda and the service rates; -estimator selects the
// estimator (sliding window or EWMA). With all three empty, runs are
// bit-identical to builds without this layer.
//
// Network faults: -netfault makes the dispatcher→computer control plane
// unreliable (per-link latency/loss/duplication, dispatcher
// crash/restart, partition windows); -ackto arms the ack/resubmission
// reliability loop and -dstate picks how a restarted dispatcher
// recovers its Algorithm 2 state. With all three empty, runs are
// bit-identical to builds without this layer.
//
// Observability: -probe turns on the metrics registry (per-computer
// queue length, utilization, up/down, breaker state, in-system count,
// interarrival statistics), -sample-dt adds fixed-cadence samples,
// -events streams per-job lifecycle events to a file (JSONL, or CSV
// with a .csv suffix), -manifest writes a per-run provenance record,
// and -debug-addr serves expvar and pprof over HTTP. Instrumentation
// runs in a dedicated replication-0 pass (shared with -trace); the
// replicated runs stay probe-free, so the reported metrics are
// bit-identical with and without these flags.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"time"

	"heterosched/internal/cli"
	"heterosched/internal/cluster"
	"heterosched/internal/ctrlplane"
	"heterosched/internal/dist"
	"heterosched/internal/probe"
	"heterosched/internal/report"
	"heterosched/internal/sim"
	"heterosched/internal/trace"
)

func main() {
	speedsFlag := flag.String("speeds", "1,1,1,1,10,10", "comma-separated relative computer speeds")
	rho := flag.Float64("rho", 0.7, "offered utilization; >= 1 simulates overload")
	policyFlag := flag.String("policy", "ORR", "policy: WRAN, ORAN, WRR, ORR, LL, LL*, JSQ2, ORRA, ORRCAPx, ORR±e, jsq(d), pod(d)[:speed|alpha], jiq")
	dispatchersFlag := flag.String("dispatchers", "1", "dispatcher replicas K[:rr|hash] (1 = the paper's central scheduler)")
	syncFlag := flag.String("sync", "never", "counter-sync period for sharded Algorithm 2 replicas: never or seconds")
	scale := flag.Int("scale", 0, "tile -speeds cyclically out to this many computers (0 = use -speeds as given)")
	duration := flag.Float64("duration", 4e5, "simulated seconds per replication (paper: 4e6)")
	reps := flag.Int("reps", 3, "independent replications (paper: 10)")
	seed := flag.Uint64("seed", 1, "root random seed")
	cv := flag.Float64("cv", 3.0, "arrival inter-arrival coefficient of variation (1 = Poisson)")
	expSizes := flag.Bool("expsizes", false, "use exponential job sizes instead of Bounded Pareto")
	meanSize := flag.Float64("meansize", 76.8, "mean job size when -expsizes is set")
	quantum := flag.Float64("quantum", 0, "if > 0, use quantum round-robin servers instead of PS")
	traceFile := flag.String("trace", "", "write a per-job CSV trace of replication 0 to this file")
	mtbf := flag.Float64("mtbf", 0, "mean time between failures per computer (exponential); 0 disables failures")
	mttr := flag.Float64("mttr", 0, "mean time to repair per computer (exponential)")
	fate := flag.String("fate", "requeue", "job fate at failure: lost, restart, resume or requeue")
	retries := flag.Int("retries", 3, "re-dispatch budget per job under -fate requeue")
	detect := flag.Float64("detect", 0, "failure/repair detection lag in seconds")
	realloc := flag.String("realloc", "stale", "static policies on failure: stale (keep fractions) or resolve (re-run allocator)")
	qcap := flag.String("qcap", "", "per-computer queue bound: K or K:oldest|newest (0/empty disables)")
	admit := flag.String("admit", "none", "admission policy: none, reject-when-full or token-bucket:RATE[:BURST]")
	deadline := flag.String("deadline", "", "per-job relative deadline: exp:MEAN, const:V or uni:LO:HI, optional :kill|:mark")
	timeout := flag.Float64("timeout", 0, "dispatcher timeout in seconds before a job is pulled back and retried (0 disables)")
	retry := flag.Int("retry", 0, "retry budget per job after timeouts and rejections")
	backoff := flag.String("backoff", "", "retry backoff BASE:MAX[:JITTER] in seconds (default 1:60:0)")
	breaker := flag.String("breaker", "", "per-computer circuit breaker CONSEC:COOLDOWN[:RATIO:WINDOW] (empty disables)")
	probeFlag := flag.Bool("probe", false, "instrument replication 0 with the metrics registry and report probe tables")
	spans := flag.String("spans", "", "write rep-0 per-job span trees as Chrome trace-event JSON to this file (Perfetto-viewable)")
	events := flag.String("events", "", "write the rep-0 lifecycle event stream to this file (JSONL; .csv selects CSV)")
	manifestPath := flag.String("manifest", "", "write a run manifest (config, seed, git, wall/sim time, final metrics) to this JSON file")
	sampleDT := flag.Float64("sample-dt", 0, "also sample probe series every this many simulated seconds (0 = event boundaries only; implies -probe)")
	debugAddr := flag.String("debug-addr", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
	driftFlag := flag.String("drift", "", "ground-truth drift specs, comma-separated: lstep:T:F, lramp:T0:T1:F, lcycle:P:A, sstep:T:F[:IDX], mis:RHOERR[:SPEEDERR]")
	replan := flag.String("replan", "", "adaptive re-planning CHECK:TRIP:COOLDOWN[:BAND[:MINN]] (watchdog period, rho trip threshold, cooldown; empty disables)")
	estimator := flag.String("estimator", "", "online estimator win:N or ewma:ALPHA (default win:256; needs -replan)")
	netfaultFlag := flag.String("netfault", "", "network-fault specs, comma-separated: loss:P[:LINK], dup:P[:LINK], lat:MEAN[:LINK], crash:MTBF:MTTR, down:drop|buffer[:CAP]|failover, part:FROM:TO[:L1+L2+...]")
	ackto := flag.String("ackto", "", "dispatch ack timeout TO[:BUDGET[:BASE:MAX[:JITTER]]]; required when the network can lose messages")
	dstate := flag.String("dstate", "", "dispatcher state recovery after a crash: acks, ckpt:DT[:CLIENTTO] or cold[:RELEARN[:CLIENTTO]] (needs a crash item)")
	ctrlFlag := flag.String("ctrl", "", "control-plane fault specs, comma-separated: loss:P[:LINK], dup:P[:LINK], lat:MEAN[:LINK], lease:T, qto:T, part:FROM:TO[:L1+L2+...], dpart:FROM:TO[:K1+K2+...]")
	flag.Parse()
	start := time.Now()

	speeds, err := cli.ParseSpeeds(*speedsFlag)
	if err != nil {
		fatal(err)
	}
	if speeds, err = cli.ScaleSpeeds(speeds, *scale); err != nil {
		fatal(err)
	}
	sharding, err := cli.ParseShardingSpecs(*dispatchersFlag, *syncFlag)
	if err != nil {
		fatal(err)
	}
	params := cli.RunParams{Rho: *rho, Duration: *duration, Reps: *reps, CV: *cv, Quantum: *quantum, MeanSize: *meanSize}
	if err := params.Validate(); err != nil {
		fatal(err)
	}
	pp := cli.ProbeParams{
		Probe: *probeFlag, Events: *events, Manifest: *manifestPath,
		SampleDT: *sampleDT, DebugAddr: *debugAddr, Spans: *spans,
	}
	if err := pp.Validate(); err != nil {
		fatal(err)
	}
	if pp.DebugAddr != "" {
		addr, _, errc, err := probe.ServeDebug(pp.DebugAddr)
		if err != nil {
			fatal(err)
		}
		go func() {
			if serr := <-errc; serr != nil {
				fmt.Fprintln(os.Stderr, "heterosim: debug server:", serr)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/vars\n", addr)
	}
	faultCfg, mode, err := cli.FaultParams{
		MTBF: *mtbf, MTTR: *mttr, Fate: *fate, Retries: *retries, Detect: *detect, Realloc: *realloc,
	}.Build()
	if err != nil {
		fatal(err)
	}
	ovCfg, err := cli.OverloadParams{
		QCap: *qcap, Admit: *admit, Deadline: *deadline,
		Timeout: *timeout, Retry: *retry, Backoff: *backoff, Breaker: *breaker,
	}.Build()
	if err != nil {
		fatal(err)
	}
	driftCfg, adaptCfg, err := cli.DriftParams{
		Drift: *driftFlag, Replan: *replan, Estimator: *estimator,
	}.Build(len(speeds))
	if err != nil {
		fatal(err)
	}
	netfaultCfg, err := cli.NetfaultParams{
		Netfault: *netfaultFlag, AckTO: *ackto, DState: *dstate,
	}.Build(len(speeds))
	if err != nil {
		fatal(err)
	}
	ctrlCfg, err := cli.CtrlParams{Ctrl: *ctrlFlag}.Build(len(speeds), sharding.Dispatchers)
	if err != nil {
		fatal(err)
	}
	factory, err := cli.ParsePolicy(*policyFlag, cli.PolicyOptions{
		Realloc:   mode,
		Faults:    faultCfg,
		Computers: len(speeds),
		Sharding:  sharding,
	})
	if err != nil {
		fatal(err)
	}

	cfg := cluster.Config{
		Speeds:      speeds,
		Utilization: *rho,
		Duration:    *duration,
		Seed:        *seed,
		ArrivalCV:   *cv,
		Faults:      faultCfg,
		Overload:    ovCfg,
		Drift:       driftCfg,
		Adapt:       adaptCfg,
		Netfault:    netfaultCfg,
		Ctrl:        ctrlCfg,
	}
	if *cv == 1 {
		cfg.ExponentialArrivals = true
	}
	if *expSizes {
		cfg.JobSize = dist.NewExponential(*meanSize)
	}
	if *quantum > 0 {
		cfg.Discipline = cluster.RR
		cfg.Quantum = *quantum
	}

	// Trace and probe replication 0 in a dedicated pass so the replicated
	// runs below stay parallel and instrumentation-free.
	instrumented := pp.Active() || *traceFile != ""
	var pb *probe.Probe
	var tres *cluster.Result
	if instrumented {
		var cleanup func() error
		pb, cleanup, err = pp.Build()
		if err != nil {
			fatal(err)
		}
		tcfg := cfg
		tcfg.Probe = pb
		var tw *trace.Writer
		var tf *os.File
		if *traceFile != "" {
			if tf, err = os.Create(*traceFile); err != nil {
				fatal(err)
			}
			tw = trace.NewWriter(tf)
			if pb.SpansOn() {
				// The span layer closes a job's span before OnFinal fires,
				// so LastFinal serves this callback the decomposition.
				tcfg.OnFinal = func(j *sim.Job, o cluster.Outcome) {
					if c, ok := pb.LastFinal(j.ID); ok {
						_ = tw.RecordFinalComponents(j, o, c.Queue, c.Service, c.Net, c.Retry)
						return
					}
					_ = tw.RecordFinal(j, o)
				}
			} else {
				tcfg.OnFinal = func(j *sim.Job, o cluster.Outcome) { _ = tw.RecordFinal(j, o) }
			}
		}
		if pb != nil {
			probe.PublishLive(pb)
		}
		if tres, err = cluster.Run(tcfg, factory()); err != nil {
			fatal(err)
		}
		if err := cleanup(); err != nil {
			fatal(err)
		}
		if tw != nil {
			if err := tw.Flush(); err != nil {
				fatal(err)
			}
			if err := tf.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceFile)
		}
		if pp.Events != "" {
			fmt.Fprintf(os.Stderr, "events written to %s\n", pp.Events)
		}
		if pp.Spans != "" {
			fmt.Fprintf(os.Stderr, "spans written to %s\n", pp.Spans)
		}
	}

	res, err := cluster.RunReplications(cfg, factory, *reps)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("policy %s on %d computers at rho=%.4g (%d reps × %.4g s)\n\n",
		res.Policy, len(speeds), *rho, *reps, *duration)
	t := report.NewTable("metrics (mean ±95% CI across replications)", "metric", "value")
	t.AddRow("mean response time (s)", report.MeanCI(res.MeanResponseTime.Mean, res.MeanResponseTime.CI95))
	t.AddRow("mean response ratio", report.MeanCI(res.MeanResponseRatio.Mean, res.MeanResponseRatio.CI95))
	t.AddRow("fairness (sd of ratio)", report.MeanCI(res.Fairness.Mean, res.Fairness.CI95))
	r0 := res.Runs[0]
	t.AddRow("resp ratio p50/p95/p99 (rep 0)",
		fmt.Sprintf("%s / %s / %s", report.F(r0.RatioP50), report.F(r0.RatioP95), report.F(r0.RatioP99)))
	if _, err := t.WriteTo(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Println()

	pt := report.NewTable("per-computer", "computer", "speed", "job share %", "utilization %", "availability %")
	for i := range speeds {
		availCell := "-"
		if res.Availability != nil {
			availCell = report.Pct(res.Availability[i])
		}
		pt.AddRow(strconv.Itoa(i+1), report.F(speeds[i]),
			report.Pct(res.JobFractions[i]), report.Pct(res.Utilizations[i]), availCell)
	}
	if _, err := pt.WriteTo(os.Stdout); err != nil {
		fatal(err)
	}

	if res.Availability != nil {
		fmt.Println()
		ft := report.NewTable("failure model (sums/means across replications)", "metric", "value")
		var failures, lost, requeued, restarted, resumed, degJobs int64
		var degTime float64
		for _, run := range res.Runs {
			failures += run.Failures
			lost += run.JobsLost
			requeued += run.JobsRequeued
			restarted += run.JobsRestarted
			resumed += run.JobsResumed
			degJobs += run.DegradedJobs
			degTime += run.DegradedTime / float64(len(res.Runs))
		}
		ft.AddRow("failures", strconv.FormatInt(failures, 10))
		ft.AddRow("jobs lost", report.MeanCI(res.JobsLost.Mean, res.JobsLost.CI95))
		ft.AddRow("jobs requeued", strconv.FormatInt(requeued, 10))
		ft.AddRow("jobs restarted / resumed", fmt.Sprintf("%d / %d", restarted, resumed))
		ft.AddRow("degraded time (s, mean)", report.F(degTime))
		ft.AddRow("degraded jobs", strconv.FormatInt(degJobs, 10))
		ft.AddRow("mean resp time degraded (s)", report.MeanCI(res.MeanResponseTimeDegraded.Mean, res.MeanResponseTimeDegraded.CI95))
		if _, err := ft.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if r0.Overload != nil {
		fmt.Println()
		var ov cluster.OverloadStats
		for _, run := range res.Runs {
			ov.AddCounters(run.Overload)
		}
		ot := report.NewTable("overload protection (sums across replications)", "metric", "value")
		ot.AddRow("admitted / rejected (admission)", fmt.Sprintf("%d / %d", ov.Admitted, ov.RejectedAdmission))
		ot.AddRow("rejected full / breaker", fmt.Sprintf("%d / %d", ov.RejectedFull, ov.RejectedBreaker))
		ot.AddRow("throughput / goodput", fmt.Sprintf("%d / %d", ov.Throughput, ov.Goodput))
		ot.AddRow("shed (queue overflow)", strconv.FormatInt(ov.ShedOverflow, 10))
		ot.AddRow("timeouts / retries / dropped (budget)",
			fmt.Sprintf("%d / %d / %d", ov.Timeouts, ov.Retries, ov.DroppedRetryBudget))
		ot.AddRow("deadline misses (killed / late)",
			fmt.Sprintf("%d (%d / %d)", ov.DeadlineMisses, ov.KilledByDeadline, ov.LateCompletions))
		ot.AddRow("breaker trips / probes", fmt.Sprintf("%d / %d", ov.BreakerTrips, ov.BreakerProbes))
		ot.AddRow("resp time p50/p95/p99 (s, rep 0)", fmt.Sprintf("%s / %s / %s",
			report.F(r0.Overload.TimeP50), report.F(r0.Overload.TimeP95), report.F(r0.Overload.TimeP99)))
		if _, err := ot.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if r0.Adaptive != nil {
		fmt.Println()
		var replans, fallbacks, breaches, supCool, supHyst, lowConf int64
		for _, run := range res.Runs {
			if run.Adaptive == nil {
				continue
			}
			replans += run.Adaptive.Replans
			fallbacks += run.Adaptive.Fallbacks
			breaches += run.Adaptive.Breaches
			supCool += run.Adaptive.SuppressedCooldown
			supHyst += run.Adaptive.SuppressedHysteresis
			lowConf += run.Adaptive.LowConfidence
		}
		at := report.NewTable("adaptive re-planning (sums across replications)", "metric", "value")
		at.AddRow("watchdog checks (rep 0)", strconv.FormatInt(r0.Adaptive.Checks, 10))
		at.AddRow("breaches / re-plans / fallbacks", fmt.Sprintf("%d / %d / %d", breaches, replans, fallbacks))
		at.AddRow("suppressed (cooldown / hysteresis)", fmt.Sprintf("%d / %d", supCool, supHyst))
		at.AddRow("low-confidence checks", strconv.FormatInt(lowConf, 10))
		at.AddRow("final lambda-hat (rep 0)", report.F(r0.Adaptive.LambdaHat))
		at.AddRow("final rho-hat / planned rho (rep 0)",
			fmt.Sprintf("%s / %s", report.F(r0.Adaptive.RhoHat), report.F(r0.Adaptive.PlannedRho)))
		if _, err := at.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if r0.Netfault != nil {
		fmt.Println()
		var nf cluster.NetfaultStats
		for _, run := range res.Runs {
			nf.AddCounters(run.Netfault)
		}
		nt := report.NewTable("network faults (sums across replications)", "metric", "value")
		nt.AddRow("dispatches sent", strconv.FormatInt(nf.Sent, 10))
		nt.AddRow("copies lost / duplicated", fmt.Sprintf("%d / %d", nf.LostCopies, nf.DupCopies))
		nt.AddRow("partition-blocked sends", strconv.FormatInt(nf.PartitionBlocked, 10))
		nt.AddRow("dup / stale deliveries (deduped)", fmt.Sprintf("%d / %d", nf.DupDeliveries, nf.StaleDeliveries))
		nt.AddRow("acks received / lost", fmt.Sprintf("%d / %d", nf.Acked, nf.AckLost))
		nt.AddRow("ack timeouts / resubmits / client rescues",
			fmt.Sprintf("%d / %d / %d", nf.AckTimeouts, nf.Resubmits, nf.ClientRescues))
		nt.AddRow("jobs lost to the network", strconv.FormatInt(nf.LostNetwork, 10))
		if nf.Crashes > 0 {
			nt.AddRow("dispatcher crashes / downtime (s)",
				fmt.Sprintf("%d / %s", nf.Crashes, report.F(nf.DownTime)))
			nt.AddRow("downtime arrivals dropped / buffered / failover",
				fmt.Sprintf("%d / %d / %d", nf.DownDropped, nf.DownBuffered, nf.FailoverDispatches))
			nt.AddRow("buffer overflow / max len", fmt.Sprintf("%d / %d", nf.BufferOverflow, nf.MaxBufferLen))
			nt.AddRow("checkpoints / plan restores / cold resets",
				fmt.Sprintf("%d / %d / %d", nf.Checkpoints, nf.PlanRestores, nf.ColdResets))
		}
		if _, err := nt.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if r0.Ctrl != nil {
		fmt.Println()
		var cp ctrlplane.Stats
		for _, run := range res.Runs {
			cp.Add(run.Ctrl)
		}
		ct := report.NewTable("control plane (sums across replications)", "metric", "value")
		ct.AddRow("idle tokens sent / dup / lost", fmt.Sprintf("%d / %d / %d", cp.TokensSent, cp.TokensDup, cp.TokensLost))
		ct.AddRow("tokens delivered / accepted / deduped",
			fmt.Sprintf("%d / %d / %d", cp.TokensDelivered, cp.TokensAccepted, cp.TokensDeduped))
		ct.AddRow("tokens spent / expired / discarded / extant",
			fmt.Sprintf("%d / %d / %d / %d", cp.TokensSpent, cp.TokensExpired, cp.TokensDiscarded, cp.TokensExtant))
		ct.AddRow("queries sent / lost / late", fmt.Sprintf("%d / %d / %d", cp.Queries, cp.QueriesLost, cp.QueriesLate))
		ct.AddRow("stale / blind cache reads", fmt.Sprintf("%d / %d", cp.StaleReads, cp.BlindReads))
		ct.AddRow("decisions / query timeouts", fmt.Sprintf("%d / %d", cp.Decisions, cp.DecisionTimeouts))
		ct.AddRow("query wait charged (s)", report.F(cp.QueryWait))
		if cp.SyncSent > 0 {
			ct.AddRow("sync frames sent / dup / lost", fmt.Sprintf("%d / %d / %d", cp.SyncSent, cp.SyncDup, cp.SyncLost))
			ct.AddRow("sync frames applied / stale", fmt.Sprintf("%d / %d", cp.SyncApplied, cp.SyncStale))
		}
		if _, err := ct.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if pb != nil {
		fmt.Println()
		et := report.NewTable("lifecycle events (instrumented rep-0 pass)", "event", "count")
		for _, kc := range pb.EventCounts() {
			et.AddRow(kc.Kind.String(), strconv.FormatInt(kc.Count, 10))
		}
		if _, err := et.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
		if pp.Probe || pp.SampleDT > 0 {
			fmt.Println()
			st := report.NewTable("arrival substreams (instrumented rep-0 pass)",
				"computer", "interarrival CV", "gaps", "mean queue len")
			reg := pb.Registry()
			for i := range speeds {
				icv, gaps := pb.InterarrivalCV(i)
				st.AddRow(strconv.Itoa(i+1), report.F(icv), strconv.FormatInt(gaps, 10),
					report.F(reg.Series("queue_len."+strconv.Itoa(i)).Mean()))
			}
			st.AddNote("round-robin splitting smooths each substream (CV below the arrival CV %.3g); probabilistic splitting preserves it", *cv)
			if _, err := st.WriteTo(os.Stdout); err != nil {
				fatal(err)
			}
		}
		if pb.Shards() > 1 {
			fmt.Println()
			kt := report.NewTable("dispatcher replicas (instrumented rep-0 pass)",
				"dispatcher", "jobs", "interarrival CV", "gaps")
			for k := 0; k < pb.Shards(); k++ {
				kcv, gaps := pb.ShardCV(k)
				kt.AddRow(strconv.Itoa(k+1), strconv.FormatInt(pb.ShardJobs(k), 10),
					report.F(kcv), strconv.FormatInt(gaps, 10))
			}
			kt.AddNote("each replica owns the arrival substream routed to it (%s sharding)", sharding.ShardBy)
			if _, err := kt.WriteTo(os.Stdout); err != nil {
				fatal(err)
			}
		}
		if tot := pb.SpanTotals(); pb.SpansOn() && tot.N > 0 {
			n := float64(tot.N)
			fmt.Println()
			dt := report.NewTable("T̄ decomposition (instrumented rep-0 pass, counted jobs)",
				"component", "mean (s)", "share %")
			dt.AddRow("queue wait", report.F(tot.Queue/n), report.Pct(tot.Queue/tot.Total()))
			dt.AddRow("service", report.F(tot.Service/n), report.Pct(tot.Service/tot.Total()))
			dt.AddRow("network", report.F(tot.Net/n), report.Pct(tot.Net/tot.Total()))
			dt.AddRow("retry/backoff", report.F(tot.Retry/n), report.Pct(tot.Retry/tot.Total()))
			dt.AddRow("T̄ = queue + service + net + retry", report.F(tot.Total()/n), report.Pct(1))
			residual := math.Abs(tot.Total()/n - tres.MeanResponseTime)
			dt.AddNote("components sum to the measured mean response time %s within %.3g s",
				report.F(tres.MeanResponseTime), residual)
			if _, err := dt.WriteTo(os.Stdout); err != nil {
				fatal(err)
			}

			fmt.Println()
			ct := report.NewTable("per-computer decomposition (counted jobs, mean seconds)",
				"computer", "jobs", "queue", "service", "net", "retry")
			byComp := pb.SpanByComputer()
			for i, s := range byComp {
				if s.N == 0 {
					continue
				}
				name := strconv.Itoa(i + 1)
				if i == len(byComp)-1 {
					name = "(undispatched)"
				}
				cn := float64(s.N)
				ct.AddRow(name, strconv.FormatInt(s.N, 10), report.F(s.Queue/cn),
					report.F(s.Service/cn), report.F(s.Net/cn), report.F(s.Retry/cn))
			}
			if _, err := ct.WriteTo(os.Stdout); err != nil {
				fatal(err)
			}

			byCause := pb.SpanByCause()
			if len(byCause) > 1 {
				causes := make([]string, 0, len(byCause))
				for c := range byCause {
					causes = append(causes, c)
				}
				sort.Strings(causes)
				fmt.Println()
				xt := report.NewTable("per-outcome decomposition (all finalized jobs, mean seconds)",
					"outcome", "jobs", "queue", "service", "net", "retry")
				for _, c := range causes {
					s := byCause[c]
					cn := float64(s.N)
					xt.AddRow(c, strconv.FormatInt(s.N, 10), report.F(s.Queue/cn),
						report.F(s.Service/cn), report.F(s.Net/cn), report.F(s.Retry/cn))
				}
				if _, err := xt.WriteTo(os.Stdout); err != nil {
					fatal(err)
				}
			}
		}
	}

	if pp.Manifest != "" {
		m := probe.NewManifest("heterosim", os.Args[1:], start)
		m.Seed = *seed
		m.Config["speeds"] = speeds
		m.Config["rho"] = *rho
		m.Config["policy"] = *policyFlag
		m.Config["duration"] = *duration
		m.Config["reps"] = *reps
		m.Config["cv"] = *cv
		if faultCfg != nil {
			m.Config["mtbf"] = *mtbf
			m.Config["mttr"] = *mttr
			m.Config["fate"] = *fate
		}
		if ovCfg != nil {
			m.Config["qcap"] = *qcap
			m.Config["admit"] = *admit
			m.Config["deadline"] = *deadline
			m.Config["timeout"] = *timeout
			m.Config["retry"] = *retry
		}
		if driftCfg != nil {
			m.Config["drift"] = *driftFlag
		}
		if sharding.Enabled() {
			m.Config["dispatchers"] = *dispatchersFlag
			m.Config["sync"] = *syncFlag
		}
		if *scale > 0 {
			m.Config["scale"] = *scale
		}
		if netfaultCfg != nil {
			m.Config["netfault"] = *netfaultFlag
			if *ackto != "" {
				m.Config["ackto"] = *ackto
			}
			if *dstate != "" {
				m.Config["dstate"] = *dstate
			}
		}
		if ctrlCfg != nil {
			m.Config["ctrl"] = *ctrlFlag
		}
		if adaptCfg != nil {
			m.Config["replan"] = *replan
			if *estimator != "" {
				m.Config["estimator"] = *estimator
			}
		}
		if pp.SampleDT > 0 {
			m.Config["sample_dt"] = pp.SampleDT
		}
		m.WallSeconds = time.Since(start).Seconds()
		runs := float64(*reps)
		if instrumented {
			runs++
		}
		m.SimTime = *duration * runs
		m.Metrics["mean_response_time"] = res.MeanResponseTime.Mean
		m.Metrics["mean_response_ratio"] = res.MeanResponseRatio.Mean
		m.Metrics["fairness"] = res.Fairness.Mean
		if r0.Adaptive != nil {
			m.Metrics["adapt_replans"] = float64(r0.Adaptive.Replans)
			m.Metrics["adapt_rho_hat"] = r0.Adaptive.RhoHat
		}
		if r0.Ctrl != nil {
			m.Metrics["ctrl_tokens_lost"] = float64(r0.Ctrl.TokensLost)
			m.Metrics["ctrl_tokens_expired"] = float64(r0.Ctrl.TokensExpired)
			m.Metrics["ctrl_query_timeouts"] = float64(r0.Ctrl.DecisionTimeouts)
			m.Metrics["ctrl_query_wait"] = r0.Ctrl.QueryWait
		}
		if pb != nil {
			for k, v := range pb.Registry().FinalSnapshot() {
				m.Metrics[k] = v
			}
			m.Events = pb.EventCountMap()
			if pb.SpansOn() {
				ss := probe.NewSpanSchema(len(speeds), pp.Spans)
				ss.Roots = pb.SpanCount()
				ss.Counted = pb.SpanTotals().N
				m.Spans = ss
			}
		}
		if err := m.WriteFile(pp.Manifest); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "manifest written to %s\n", pp.Manifest)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "heterosim:", err)
	os.Exit(1)
}
