// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all                     # every table and figure
//	experiments -run fig3 -scale 0.1 -reps 5 # one figure, custom scale
//	experiments -list                        # available experiments
//
// Scale 1.0 with 10 replications reproduces the paper's full methodology
// (4×10⁶ simulated seconds per run); the default scale 0.05 regenerates
// the shapes in minutes. Output is aligned text; -csv writes each table as
// CSV to the given directory as well.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"heterosched/internal/experiments"
	"heterosched/internal/plot"
	"heterosched/internal/report"
)

func main() {
	run := flag.String("run", "all", "experiment to run: all, "+strings.Join(experiments.Names(), ", "))
	scale := flag.Float64("scale", 0.05, "fraction of the paper's 4e6-second run length")
	reps := flag.Int("reps", 3, "independent replications per data point (paper: 10)")
	seed := flag.Uint64("seed", 1, "root random seed")
	csvDir := flag.String("csv", "", "directory to also write per-table CSV files")
	svgDir := flag.String("svg", "", "directory to write SVG figure panels (for experiments with charts)")
	list := flag.Bool("list", false, "list available experiments and exit")
	quiet := flag.Bool("q", false, "suppress progress lines")
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}

	opts := experiments.Options{Scale: *scale, Reps: *reps, Seed: *seed}
	if !*quiet {
		opts.Log = os.Stderr
	}

	names := experiments.Names()
	if *run != "all" {
		names = strings.Split(*run, ",")
	}

	for _, name := range names {
		name = strings.TrimSpace(name)
		start := time.Now()
		out, err := experiments.RunByName(name, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		for i, t := range out.Tables {
			if _, err := t.WriteTo(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Println()
			if *csvDir != "" {
				if err := writeCSV(*csvDir, name, i, t); err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
					os.Exit(1)
				}
			}
		}
		if *svgDir != "" {
			for i, c := range out.Charts {
				if err := writeSVG(*svgDir, name, i, c); err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
					os.Exit(1)
				}
			}
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "%s finished in %v\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
}

func writeSVG(dir, name string, idx int, c *plot.Chart) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s_%c.svg", name, 'a'+idx))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.WriteSVG(f)
}

func writeCSV(dir, name string, idx int, t *report.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", name, idx))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
