// Command chaos drives the chaos harness (internal/chaos): randomized
// composition of the simulator's fault layers, checked in-process
// against the invariant registry, with automatic shrinking of any
// violating scenario to a minimal replayable reproducer.
//
// Usage:
//
//	chaos search [-chaos spec] [-out dir] [-v]
//	chaos replay -spec scenario [-out dir]
//	chaos shrink -spec scenario -invariant name [-out dir]
//	chaos list
//
// search samples seeded scenarios from the -chaos search space
// (seeds:N,intensity:X,dims:fail+over+drift+net,dur:T,rho:R,
// speeds:S1+S2+...,seed:S,stall:T,insys:N — every knob optional) and
// runs each against the full registry. A violating scenario is
// immediately shrunk and its minimal reproducer written to
// <out>/repro-<k>.chaos; the exit code is 1 if anything violated.
//
// replay runs one serialized scenario — a spec string or a path to a
// reproducer file — and reports every violation. With -out it also
// exports the run's lifecycle event stream (events.jsonl) and a run
// manifest (manifest.json) in the probe schema, so probecheck and the
// replay tooling work on chaos runs unchanged.
//
// shrink delta-debugs a violating scenario down to a minimal spec that
// still violates the named invariant (see `chaos list` for the
// registry).
//
// The -inject-double-final flag (replay/search/shrink) plants a
// deliberate double-OnFinal accounting bug for every job ID divisible
// by its value. It exists to validate the harness end to end: a seeded
// bug must be caught by the final-exactly-once invariant and shrunk to
// a deterministic reproducer. It is never set in honest runs.
//
// Scenarios are deterministic: the same spec string (or the same search
// seed and index) replays the same simulation, event for event.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"heterosched/internal/chaos"
	"heterosched/internal/cli"
	"heterosched/internal/probe"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "search":
		runSearch(os.Args[2:])
	case "replay":
		runReplay(os.Args[2:])
	case "shrink":
		runShrink(os.Args[2:])
	case "list":
		runList()
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "chaos: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  chaos search [-chaos spec] [-out dir] [-v]     sample and check scenarios
  chaos replay -spec scenario [-out dir]         re-run one scenario
  chaos shrink -spec scenario -invariant name    minimize a violating scenario
  chaos list                                     print the invariant registry`)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
	os.Exit(2)
}

func runList() {
	for _, inv := range chaos.Registry() {
		fmt.Printf("%-20s %s\n", inv.Name, inv.Desc)
	}
}

func runSearch(args []string) {
	fs := flag.NewFlagSet("chaos search", flag.ExitOnError)
	spec := fs.String("chaos", "seeds:200", "chaos search spec (seeds:N,intensity:X,dims:...,dur:T,...)")
	out := fs.String("out", "", "directory for reproducer artifacts of violating scenarios")
	verbose := fs.Bool("v", false, "print every scenario, not just violations")
	inject := fs.Int64("inject-double-final", 0, "test-only: double the OnFinal accounting for job IDs divisible by this")
	fs.Parse(args)

	cs, err := cli.ChaosParams{Chaos: *spec}.Build()
	if err != nil {
		fatal(err)
	}
	if cs == nil {
		fatal(fmt.Errorf("empty -chaos spec"))
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}

	g := chaos.NewGenerator(cs)
	opts := chaos.Options{InjectDoubleFinal: *inject}
	violated := 0
	start := time.Now()
	for k := 0; k < g.Scenarios(); k++ {
		sc := g.Spec(k)
		rep, err := chaos.Execute(sc, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: scenario %d: %v\n", k, err)
			violated++
			continue
		}
		if !rep.Failed() {
			if *verbose {
				fmt.Printf("scenario %4d ok        layers=%s jobs=%d\n",
					k, strings.Join(sc.Layers(), "+"), rep.Result.GeneratedJobs)
			}
			continue
		}
		violated++
		fmt.Printf("scenario %4d VIOLATED  layers=%s\n  spec: %s\n",
			k, strings.Join(sc.Layers(), "+"), sc.String())
		for _, v := range rep.Violations {
			fmt.Printf("  %s\n", v)
		}
		// Shrink toward the first violated invariant and persist the
		// minimal reproducer.
		inv := rep.Violations[0].Invariant
		res, err := chaos.Shrink(sc, inv, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: scenario %d: shrink: %v\n", k, err)
			continue
		}
		fmt.Printf("  shrunk (%d runs, %d steps) to: %s\n", res.Runs, res.Steps, res.Spec.String())
		if *out != "" {
			path := filepath.Join(*out, fmt.Sprintf("repro-%d.chaos", k))
			if err := writeRepro(path, res.Spec, inv, *inject); err != nil {
				fatal(err)
			}
			fmt.Printf("  reproducer: %s\n", path)
		}
	}
	fmt.Printf("chaos search: %d scenarios, %d violated (%.2fs)\n",
		g.Scenarios(), violated, time.Since(start).Seconds())
	if violated > 0 {
		os.Exit(1)
	}
}

func runReplay(args []string) {
	fs := flag.NewFlagSet("chaos replay", flag.ExitOnError)
	specArg := fs.String("spec", "", "scenario spec string, or path to a reproducer file")
	out := fs.String("out", "", "directory for events.jsonl and manifest.json artifacts")
	inject := fs.Int64("inject-double-final", 0, "test-only: double the OnFinal accounting for job IDs divisible by this")
	fs.Parse(args)

	sc, err := loadSpec(*specArg)
	if err != nil {
		fatal(err)
	}
	opts := chaos.Options{InjectDoubleFinal: *inject}

	var events *os.File
	var jw *probe.JSONLWriter
	start := time.Now()
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		events, err = os.Create(filepath.Join(*out, "events.jsonl"))
		if err != nil {
			fatal(err)
		}
		jw = probe.NewJSONLWriter(events)
		opts.Events = jw
	}

	rep, err := chaos.Execute(sc, opts)
	if err != nil {
		fatal(err)
	}
	if events != nil {
		if err := events.Close(); err != nil {
			fatal(err)
		}
		m := probe.NewManifest("chaos", args, start)
		m.Seed = sc.Seed
		m.WallSeconds = time.Since(start).Seconds()
		m.SimTime = rep.Result.SimulatedTime
		m.Config["spec"] = sc.String()
		m.Config["layers"] = strings.Join(sc.Layers(), "+")
		m.Metrics["mean_response_time"] = rep.Result.MeanResponseTime
		m.Metrics["mean_response_ratio"] = rep.Result.MeanResponseRatio
		m.Metrics["generated_jobs"] = float64(rep.Result.GeneratedJobs)
		m.Metrics["violations"] = float64(len(rep.Violations))
		if err := m.WriteFile(filepath.Join(*out, "manifest.json")); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("spec: %s\nlayers: %s\njobs: %d generated, %d finalized, %d events verified\n",
		sc.String(), strings.Join(sc.Layers(), "+"),
		rep.Result.GeneratedJobs, rep.FinalJobs, rep.EventStats.Events)
	if !rep.Failed() {
		fmt.Println("invariants: all ok")
		return
	}
	fmt.Printf("invariants: %d violations\n", len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Printf("  %s\n", v)
	}
	os.Exit(1)
}

func runShrink(args []string) {
	fs := flag.NewFlagSet("chaos shrink", flag.ExitOnError)
	specArg := fs.String("spec", "", "scenario spec string, or path to a reproducer file")
	invariant := fs.String("invariant", "", "invariant to preserve while shrinking (see `chaos list`)")
	out := fs.String("out", "", "directory for the minimal reproducer file")
	inject := fs.Int64("inject-double-final", 0, "test-only: double the OnFinal accounting for job IDs divisible by this")
	fs.Parse(args)

	sc, err := loadSpec(*specArg)
	if err != nil {
		fatal(err)
	}
	if *invariant == "" {
		fatal(fmt.Errorf("shrink needs -invariant (see `chaos list`)"))
	}
	res, err := chaos.Shrink(sc, *invariant, chaos.Options{InjectDoubleFinal: *inject})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("shrunk in %d runs (%d accepted steps)\n  from: %s\n  to:   %s\n",
		res.Runs, res.Steps, sc.String(), res.Spec.String())
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, "repro.chaos")
		if err := writeRepro(path, res.Spec, *invariant, *inject); err != nil {
			fatal(err)
		}
		fmt.Printf("  reproducer: %s\n", path)
	}
}

// loadSpec resolves -spec: a path to a reproducer file (first
// non-comment line holds the spec) or a literal spec string.
func loadSpec(arg string) (chaos.Spec, error) {
	if arg == "" {
		return chaos.Spec{}, fmt.Errorf("missing -spec (a scenario string or reproducer file)")
	}
	if b, err := os.ReadFile(arg); err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return chaos.ParseSpec(line)
		}
		return chaos.Spec{}, fmt.Errorf("reproducer %s holds no spec line", arg)
	}
	return chaos.ParseSpec(arg)
}

// writeRepro persists a minimal reproducer: the spec line plus comments
// recording what it violates and how to replay it.
func writeRepro(path string, sc chaos.Spec, invariant string, inject int64) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# chaos reproducer: violates %s\n", invariant)
	fmt.Fprintf(&b, "# replay: chaos replay -spec %s", path)
	if inject > 0 {
		fmt.Fprintf(&b, " -inject-double-final %d", inject)
	}
	b.WriteString("\n")
	b.WriteString(sc.String())
	b.WriteString("\n")
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
