package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "in.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestChartFromCSV(t *testing.T) {
	path := writeTemp(t, "utilization,ORR,WRR\n0.3,0.22,0.43\n0.5,0.43,0.59\n0.9,2.6,3.2\n")
	c, err := chartFromCSV(path, "t", "y", false, 640, 420)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Series) != 2 {
		t.Fatalf("series = %d", len(c.Series))
	}
	if c.Series[0].Name != "ORR" || c.Series[1].Name != "WRR" {
		t.Errorf("series names: %v, %v", c.Series[0].Name, c.Series[1].Name)
	}
	if c.XLabel != "utilization" {
		t.Errorf("xlabel = %q", c.XLabel)
	}
	if len(c.Series[0].X) != 3 || c.Series[1].Y[2] != 3.2 {
		t.Errorf("data wrong: %+v", c.Series)
	}
	var sb strings.Builder
	if err := c.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<svg") {
		t.Error("no svg output")
	}
}

func TestChartFromCSVErrors(t *testing.T) {
	cases := []string{
		"",              // empty
		"x\n1\n",        // single column
		"x,y\n",         // header only
		"x,y\nfoo,1\n",  // bad x
		"x,y\n1,bar\n",  // bad y
		"x,y\n1,2\n3\n", // ragged (csv reader errors)
	}
	for i, content := range cases {
		path := writeTemp(t, content)
		if _, err := chartFromCSV(path, "", "", false, 640, 420); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := chartFromCSV("/does/not/exist.csv", "", "", false, 640, 420); err == nil {
		t.Error("missing file accepted")
	}
}
