// Command plotcsv renders a sweep CSV (as written by cmd/experiments
// -csv) into an SVG line chart. The first CSV column is the X axis; every
// further column is one series.
//
// Usage:
//
//	plotcsv -in results_csv/fig3_1.csv -out fig3b.svg -title "Figure 3(b)" -ylabel "mean response ratio"
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"heterosched/internal/plot"
)

func main() {
	in := flag.String("in", "", "input CSV path (first column = x, remaining columns = series)")
	out := flag.String("out", "", "output SVG path")
	title := flag.String("title", "", "chart title")
	ylabel := flag.String("ylabel", "", "y axis label")
	logy := flag.Bool("logy", false, "log-scale y axis")
	width := flag.Int("width", 640, "SVG width")
	height := flag.Int("height", 420, "SVG height")
	flag.Parse()
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "plotcsv: -in and -out are required")
		os.Exit(2)
	}

	chart, err := chartFromCSV(*in, *title, *ylabel, *logy, *width, *height)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := chart.WriteSVG(f); err != nil {
		fatal(err)
	}
}

// chartFromCSV parses the CSV and assembles the chart.
func chartFromCSV(path, title, ylabel string, logy bool, width, height int) (*plot.Chart, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) < 2 || len(rows[0]) < 2 {
		return nil, fmt.Errorf("plotcsv: %s needs a header and at least one data row with 2+ columns", path)
	}
	header := rows[0]
	nSeries := len(header) - 1
	xs := make([]float64, 0, len(rows)-1)
	ys := make([][]float64, nSeries)
	for _, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("plotcsv: ragged row %v", row)
		}
		x, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("plotcsv: bad x value %q: %v", row[0], err)
		}
		xs = append(xs, x)
		for j := 0; j < nSeries; j++ {
			y, err := strconv.ParseFloat(row[j+1], 64)
			if err != nil {
				return nil, fmt.Errorf("plotcsv: bad value %q in column %s: %v", row[j+1], header[j+1], err)
			}
			ys[j] = append(ys[j], y)
		}
	}
	chart := &plot.Chart{
		Title:  title,
		XLabel: header[0],
		YLabel: ylabel,
		LogY:   logy,
		Width:  width,
		Height: height,
	}
	for j := 0; j < nSeries; j++ {
		chart.Series = append(chart.Series, plot.Series{
			Name: header[j+1],
			X:    xs,
			Y:    ys[j],
		})
	}
	return chart, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plotcsv:", err)
	os.Exit(1)
}
