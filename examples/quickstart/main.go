// Quickstart: compute an optimized workload allocation for a small
// heterogeneous cluster, simulate the four static scheduling policies of
// the paper plus the dynamic yardstick, and print a comparison.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"heterosched/internal/alloc"
	"heterosched/internal/cluster"
	"heterosched/internal/queueing"
	"heterosched/internal/report"
	"heterosched/internal/sched"
)

func main() {
	// A cluster of four old machines and two new ones 10× faster,
	// offered 70% of its aggregate capacity.
	speeds := []float64{1, 1, 1, 1, 10, 10}
	const rho = 0.70

	// Step 1 — allocation. The optimized scheme (paper Algorithm 1) gives
	// the fast machines a disproportionately large share.
	weighted, err := alloc.Proportional{}.Allocate(speeds, rho)
	if err != nil {
		log.Fatal(err)
	}
	optimized, err := alloc.Optimized{}.Allocate(speeds, rho)
	if err != nil {
		log.Fatal(err)
	}
	at := report.NewTable("workload allocation (fraction of jobs, %)",
		"computer", "speed", "weighted", "optimized")
	for i, s := range speeds {
		at.AddRow(fmt.Sprint(i+1), report.F(s), report.Pct(weighted[i]), report.Pct(optimized[i]))
	}
	must(at.WriteTo(os.Stdout))
	fmt.Println()

	// Step 2 — predicted performance from the analytic M/M/1-PS model.
	sys, err := queueing.SystemFromUtilization(speeds, 76.8, rho)
	if err != nil {
		log.Fatal(err)
	}
	rw, err := sys.MeanResponseRatio(weighted)
	if err != nil {
		log.Fatal(err)
	}
	ro, err := sys.MeanResponseRatio(optimized)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analytic mean response ratio: weighted %.3f, optimized %.3f (%.0f%% better)\n\n",
		rw, ro, 100*(1-ro/rw))

	// Step 3 — simulate with the paper's realistic workload (heavy-tailed
	// Bounded Pareto job sizes, bursty CV=3 arrivals).
	cfg := cluster.Config{
		Speeds:      speeds,
		Utilization: rho,
		Duration:    2e5, // short demo run; paper uses 4e6
		Seed:        1,
	}
	st := report.NewTable("simulated metrics (2 replications each)",
		"policy", "mean resp time (s)", "mean resp ratio", "fairness")
	for _, factory := range []cluster.PolicyFactory{
		func() cluster.Policy { return sched.WRAN() },
		func() cluster.Policy { return sched.ORAN() },
		func() cluster.Policy { return sched.WRR() },
		func() cluster.Policy { return sched.ORR() },
		func() cluster.Policy { return sched.NewLeastLoad() },
	} {
		res, err := cluster.RunReplications(cfg, factory, 2)
		if err != nil {
			log.Fatal(err)
		}
		st.AddRow(res.Policy,
			report.F(res.MeanResponseTime.Mean),
			report.F(res.MeanResponseRatio.Mean),
			report.F(res.Fairness.Mean))
	}
	st.AddNote("expect ORR < ORAN, WRR < WRAN, and LL (dynamic) best overall")
	must(st.WriteTo(os.Stdout))
}

func must(_ int64, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
