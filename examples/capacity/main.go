// Capacity planning with the analytic model: how much load can a
// heterogeneous cluster accept while meeting a mean-response-ratio SLA,
// under simple weighted vs optimized workload allocation?
//
// For each allocation scheme the example bisects on the utilization ρ to
// find the largest load whose predicted mean response ratio stays within
// the SLA, then cross-checks the frontier point by simulation.
//
// Run with:
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"
	"os"

	"heterosched/internal/alloc"
	"heterosched/internal/cluster"
	"heterosched/internal/dist"
	"heterosched/internal/numeric"
	"heterosched/internal/queueing"
	"heterosched/internal/report"
	"heterosched/internal/sched"
)

const (
	slaRatio    = 3.0  // mean response ratio budget
	meanJobSize = 76.8 // seconds (paper default workload)
)

func main() {
	speeds := []float64{1, 1, 1, 1, 1, 1.5, 1.5, 1.5, 1.5, 2, 2, 2, 5, 10, 12}

	table := report.NewTable(
		fmt.Sprintf("max sustainable utilization for mean response ratio <= %.1f", slaRatio),
		"allocation", "max rho", "jobs/s", "headroom vs weighted")
	var rhoWeighted float64
	for _, a := range []alloc.Allocator{alloc.Proportional{}, alloc.Optimized{}} {
		rhoMax := maxLoad(speeds, a)
		sys, err := queueing.SystemFromUtilization(speeds, meanJobSize, rhoMax)
		if err != nil {
			log.Fatal(err)
		}
		headroom := "-"
		if rhoWeighted == 0 {
			rhoWeighted = rhoMax
		} else {
			headroom = report.Pct(rhoMax/rhoWeighted-1) + "%"
		}
		table.AddRow(name(a), report.F4(rhoMax), report.F(sys.Lambda), headroom)
	}
	must(table.WriteTo(os.Stdout))
	fmt.Println()

	// Cross-check: simulate ORR at the optimized frontier with Poisson
	// arrivals (the analytic model's assumption) and the bursty CV=3
	// workload, to show how much slack a planner should keep for
	// burstiness.
	rhoMax := maxLoad(speeds, alloc.Optimized{})
	check := report.NewTable("simulated mean response ratio at the optimized frontier",
		"arrival process", "mean resp ratio", "within SLA?")
	for _, poisson := range []bool{true, false} {
		cfg := cluster.Config{
			Speeds:              speeds,
			Utilization:         rhoMax,
			JobSize:             dist.PaperJobSize(),
			ExponentialArrivals: poisson,
			ArrivalCV:           3.0,
			Duration:            4e5,
			Seed:                21,
		}
		res, err := cluster.RunReplications(cfg, func() cluster.Policy { return sched.ORR() }, 3)
		if err != nil {
			log.Fatal(err)
		}
		label := "H2, CV=3 (bursty)"
		if poisson {
			label = "Poisson (model)"
		}
		within := "no"
		if res.MeanResponseRatio.Mean <= slaRatio*1.05 {
			within = "yes"
		}
		check.AddRow(label, report.F(res.MeanResponseRatio.Mean), within)
	}
	check.AddNote("the M/M/1 frontier is exact under Poisson arrivals; bursty traffic needs slack")
	must(check.WriteTo(os.Stdout))
}

// maxLoad bisects on ρ for the largest load meeting the SLA under the
// given allocation scheme.
func maxLoad(speeds []float64, a alloc.Allocator) float64 {
	excess := func(rho float64) float64 {
		fr, err := a.Allocate(speeds, rho)
		if err != nil {
			return 1 // infeasible counts as over-SLA
		}
		sys, err := queueing.SystemFromUtilization(speeds, meanJobSize, rho)
		if err != nil {
			return 1
		}
		ratio, err := sys.MeanResponseRatio(fr)
		if err != nil {
			return 1
		}
		return ratio - slaRatio
	}
	rho, err := numeric.Bisect(excess, 0.01, 0.999, 1e-9, 200)
	if err != nil {
		log.Fatal(err)
	}
	return rho
}

func name(a alloc.Allocator) string {
	if _, ok := a.(alloc.Proportional); ok {
		return "weighted"
	}
	return "optimized"
}

func must(_ int64, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
