// Dispatcher demo: the paper's Algorithm 2 (smoothed weighted round-robin)
// on the §3.2 example, compared against random and classic cyclic WRR
// dispatching.
//
// It prints the dispatch sequence for fractions 1/8, 1/8, 1/4, 1/2 and the
// per-interval workload allocation deviation of the three strategies on a
// bursty arrival stream (the Figure 2 measurement).
//
// Run with:
//
//	go run ./examples/dispatcher
package main

import (
	"fmt"
	"log"
	"os"

	"heterosched/internal/dispatch"
	"heterosched/internal/dist"
	"heterosched/internal/report"
	"heterosched/internal/rng"
)

func main() {
	// Part 1 — the paper's example sequence.
	fractions := []float64{0.125, 0.125, 0.25, 0.5}
	rr, err := dispatch.NewRoundRobin(fractions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Algorithm 2 on fractions 1/8, 1/8, 1/4, 1/2 — first 24 jobs:")
	for i := 0; i < 24; i++ {
		fmt.Printf("c%d ", rr.Next()+1)
		if (i+1)%8 == 0 {
			fmt.Println()
		}
	}
	fmt.Println("\n(computer 4 gets every other job; the 1/8 computers alternate cycles)")

	// Part 2 — smoothness under bursty arrivals (Figure 2 style).
	target := []float64{0.35, 0.22, 0.15, 0.12, 0.04, 0.04, 0.04, 0.04}
	root := rng.New(7)
	h2 := dist.FitHyperExp2(2.2, 3.0) // mean 2.2 s, CV 3 arrivals

	strategies := map[string]dispatch.Dispatcher{}
	rr8, err := dispatch.NewRoundRobin(target)
	if err != nil {
		log.Fatal(err)
	}
	strategies["round-robin"] = rr8
	ran, err := dispatch.NewRandom(target, root.Derive("random"))
	if err != nil {
		log.Fatal(err)
	}
	strategies["random"] = ran
	cyc, err := dispatch.NewCyclicWRR(target, 100)
	if err != nil {
		log.Fatal(err)
	}
	strategies["cyclic WRR"] = cyc

	trackers := map[string]*dispatch.IntervalDeviation{}
	for name := range strategies {
		tr, err := dispatch.NewIntervalDeviation(target, 120)
		if err != nil {
			log.Fatal(err)
		}
		trackers[name] = tr
	}

	// One shared bursty arrival stream, observed by all three strategies.
	arr := root.Derive("arrivals")
	for t := h2.Sample(arr); t < 30*120; t += h2.Sample(arr) {
		for name, d := range strategies {
			trackers[name].Observe(t, d.Next())
		}
	}

	for _, tr := range trackers {
		tr.Flush(30 * 120)
	}
	table := report.NewTable("\nworkload allocation deviation per 120 s interval",
		"interval", "round-robin", "cyclic WRR", "random")
	devRR := trackers["round-robin"].Deviations()
	devCyc := trackers["cyclic WRR"].Deviations()
	devRan := trackers["random"].Deviations()
	var sumRR, sumCyc, sumRan float64
	for i := range devRR {
		table.AddRow(fmt.Sprint(i+1), report.F4(devRR[i]), report.F4(devCyc[i]), report.F4(devRan[i]))
		sumRR += devRR[i]
		sumCyc += devCyc[i]
		sumRan += devRan[i]
	}
	n := float64(len(devRR))
	table.AddRow("mean", report.F4(sumRR/n), report.F4(sumCyc/n), report.F4(sumRan/n))
	table.AddNote("Algorithm 2 interleaves jobs, so even short intervals track the target split")
	if _, err := table.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
