// Webfarm: applying the paper's techniques to the WWW scenario its
// introduction motivates — a DNS-style request distributor in front of a
// heterogeneous web server farm.
//
// The farm mixes three server generations (relative capacities 1, 2.5 and
// 6). Request service demands are heavy-tailed (Bounded Pareto — static
// pages to giant downloads) and arrivals are bursty (CV 3). The example
// sweeps the offered load and compares the simple weighted split that DNS
// schedulers traditionally use (WRAN) against the paper's Optimized
// Round-Robin (ORR), then shows how each scheme loads the server tiers.
//
// Run with:
//
//	go run ./examples/webfarm
package main

import (
	"fmt"
	"log"
	"os"

	"heterosched/internal/alloc"
	"heterosched/internal/cluster"
	"heterosched/internal/dist"
	"heterosched/internal/report"
	"heterosched/internal/sched"
)

func main() {
	// 6 legacy servers, 3 mid-generation, 2 current-generation.
	speeds := []float64{1, 1, 1, 1, 1, 1, 2.5, 2.5, 2.5, 6, 6}

	// Request service demand: mean ≈ 96 ms on a legacy server, with a
	// heavy tail out to 60 s (large downloads / expensive CGI).
	requestSize := dist.NewBoundedPareto(0.010, 60.0, 1.1)
	fmt.Printf("request size: mean %.1f ms, CV %.1f\n\n",
		1000*requestSize.Mean(), dist.CV(requestSize))

	sweep := report.NewTable("mean response ratio vs offered load (lower is better)",
		"load", "DNS weighted (WRAN)", "ORR", "gain %")
	for _, rho := range []float64{0.3, 0.5, 0.7, 0.85} {
		cfg := cluster.Config{
			Speeds:      speeds,
			Utilization: rho,
			JobSize:     requestSize,
			ArrivalCV:   3.0,
			Duration:    2000, // seconds of farm time ≈ 1.5M requests at 0.85
			Seed:        11,
		}
		wran, err := cluster.RunReplications(cfg, func() cluster.Policy { return sched.WRAN() }, 3)
		if err != nil {
			log.Fatal(err)
		}
		orr, err := cluster.RunReplications(cfg, func() cluster.Policy { return sched.ORR() }, 3)
		if err != nil {
			log.Fatal(err)
		}
		gain := 100 * (1 - orr.MeanResponseRatio.Mean/wran.MeanResponseRatio.Mean)
		sweep.AddRow(report.F2(rho),
			report.F(wran.MeanResponseRatio.Mean),
			report.F(orr.MeanResponseRatio.Mean),
			report.F2(gain))
	}
	must(sweep.WriteTo(os.Stdout))
	fmt.Println()

	// How the schemes split traffic across tiers at 70% load.
	const rho = 0.7
	weighted, err := alloc.Proportional{}.Allocate(speeds, rho)
	if err != nil {
		log.Fatal(err)
	}
	optimized, err := alloc.Optimized{}.Allocate(speeds, rho)
	if err != nil {
		log.Fatal(err)
	}
	tiers := report.NewTable("traffic share per server at 70% load (%)",
		"tier", "capacity", "weighted", "optimized")
	names := map[float64]string{1: "legacy", 2.5: "mid", 6: "current"}
	seen := map[float64]bool{}
	for i, s := range speeds {
		if seen[s] {
			continue
		}
		seen[s] = true
		tiers.AddRow(names[s], report.F(s), report.Pct(weighted[i]), report.Pct(optimized[i]))
	}
	tiers.AddNote("optimized allocation drains the legacy tier and concentrates load on fast servers")
	must(tiers.WriteTo(os.Stdout))
}

func must(_ int64, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
