// Replay: record a job trace from one simulation, then re-run the exact
// same workload under different scheduling policies — the apples-to-apples
// comparison that synthetic re-sampling cannot give.
//
// The example records a WRAN run on a heterogeneous cluster, replays the
// identical arrival sequence under ORR and Dynamic Least-Load, and prints
// the per-policy metrics plus a per-computer traffic breakdown from the
// trace itself.
//
// Run with:
//
//	go run ./examples/replay
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"heterosched/internal/cluster"
	"heterosched/internal/report"
	"heterosched/internal/sched"
	"heterosched/internal/sim"
	"heterosched/internal/trace"
)

func main() {
	speeds := []float64{1, 1, 1, 1, 10, 10}
	const rho = 0.7

	// Step 1 — record a trace from a WRAN run (the paper's baseline).
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	recordCfg := cluster.Config{
		Speeds:         speeds,
		Utilization:    rho,
		Duration:       100000,
		WarmupFraction: -1, // trace everything so the replay is complete
		Seed:           42,
		OnDeparture:    func(j *sim.Job) { _ = w.Record(j) },
	}
	base, err := cluster.Run(recordCfg, sched.WRAN())
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...) // reading the buffer consumes it
	records, err := trace.NewReader(&buf).ReadAll()
	if err != nil {
		log.Fatal(err)
	}
	trace.SortByArrival(records)
	fmt.Printf("recorded %d jobs from a WRAN run (mean response ratio %.3f)\n\n",
		len(records), base.MeanResponseRatio)

	// Step 2 — replay the identical workload under each policy.
	table := report.NewTable("identical workload, different policies",
		"policy", "mean resp time (s)", "mean resp ratio", "fairness")
	table.AddRow("WRAN (recorded)", report.F(base.MeanResponseTime),
		report.F(base.MeanResponseRatio), report.F(base.Fairness))
	for _, factory := range []cluster.PolicyFactory{
		func() cluster.Policy { return sched.ORR() },
		func() cluster.Policy { return sched.NewLeastLoad() },
	} {
		replayCfg := cluster.Config{
			Speeds:         speeds,
			Utilization:    rho,
			Duration:       recordCfg.Duration,
			WarmupFraction: -1,
			Seed:           42,
			Replay:         trace.Replay(records),
		}
		res, err := cluster.Run(replayCfg, factory())
		if err != nil {
			log.Fatal(err)
		}
		table.AddRow(res.Policy, report.F(res.MeanResponseTime),
			report.F(res.MeanResponseRatio), report.F(res.Fairness))
	}
	table.AddNote("every row processes the same %d arrivals with the same sizes", len(records))
	if _, err := table.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Step 3 — offline analysis of the recorded trace.
	sum, err := trace.Summarize(trace.NewReader(bytes.NewReader(raw)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	per := report.NewTable("per-computer traffic in the recorded WRAN run",
		"computer", "speed", "jobs")
	for i := range speeds {
		per.AddRow(fmt.Sprint(i+1), report.F(speeds[i]), fmt.Sprint(sum.PerTarget[i]))
	}
	if _, err := per.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
